"""Warm execution daemon: a unix-domain-socket server over the engine.

Every cold CLI invocation pays process-pool spin-up and a disk read per
cache lookup.  The daemon amortises both across invocations: it owns a
long-lived ``ProcessPoolExecutor`` (workers stay forked and warm) and
layers an in-memory decoded-result index over the on-disk
:class:`ResultCache` so a warm request never re-stats or re-reads a blob.
The daemon hashes the source fingerprint once at start; clients send their
own fingerprint with every submit and are refused (``stale`` frame) when
the sources have changed since, so a long-lived daemon can never silently
serve results computed by old code.

Protocol -- length-prefixed NDJSON over ``AF_UNIX``.  Each frame is one JSON
object serialized to a single line, preceded by its byte length on its own
line (so consumers can pre-allocate and corrupt streams fail loudly)::

    22\n
    {"op":"status","v":1}\n

Requests (client -> daemon): ``submit`` (experiment ids + quick/shard_size;
the daemon answers with one ``event`` frame per
:class:`~repro.engine.executor.JobEvent` as shards land, then a ``done``
frame carrying per-request cache stats), ``fleet`` (one fleet traffic job
config; same event stream, done frame additionally carries this request's
auth-latency histogram), ``cancel`` (abort an in-flight request by id),
``metrics`` (Prometheus text exposition of the daemon's telemetry
registry), ``dump``/``tail`` (the flight recorder's per-request diagnostic
records; ``tail`` can ``follow`` the stream live), ``status``, ``ping``,
and ``shutdown``.  Error responses are ``{"type": "error", "message":
...}``.

Request tracing: every work request runs under a ``trace_id`` -- adopted
from the client's request frame when it sent one (so client, daemon, and
pool-worker spans form one tree per request), minted fresh otherwise --
and every ``accepted``/``event``/terminal frame the request produces
carries it back, so a client can tie each frame to its trace.  A client
may also send ``parent_span`` to parent the daemon's ``daemon.request``
span under its own; spans are only *recorded* when the daemon was started
with ``--trace``.

Flight recorder: the daemon retains the last *N* completed work requests
(:class:`repro.telemetry.FlightRecorder` -- frames sent, queue wait, phase
timings, outcome, cache/retry/rebuild/fault tallies, slow-request flag)
for post-hoc diagnosis via ``dump``/``tail``; ``status`` embeds its
occupancy, slow-request count, and last error.

Service semantics (this is a multi-client daemon, not a one-shot pipe):

* Work requests pass through a bounded FIFO :class:`RequestQueue` -- at
  most ``max_inflight`` execute concurrently, at most ``queue_depth`` wait
  behind them, and overflow is answered *immediately* with a structured
  ``busy`` frame instead of a hang.  Admitted requests first receive an
  ``accepted`` frame carrying their ``request_id`` (client-chosen or
  daemon-assigned), the handle for ``cancel``.
* A request may carry ``timeout_s``; when the deadline passes the daemon
  cancels the request's queued shards (in-flight shards drain into the
  cache) and answers with a ``timeout`` frame naming the phase
  (``queued``/``running``).  An explicit ``cancel`` op settles the stream
  with a ``cancelled`` frame the same way.
* A killed pool worker breaks the shared ``ProcessPoolExecutor``; the
  daemon's :class:`~repro.engine.executor.PoolSupervisor` rebuilds it and
  retries the interrupted jobs with exponential backoff up to a retry
  budget -- results stay bit-identical because jobs are pure, and only the
  affected request fails once the budget is exhausted.
* A client that disconnects mid-stream is reaped: its request's queued
  shards are cancelled, its in-flight shards drain into the cache, and
  every other connection keeps streaming.  ``status``/``ping`` bypass the
  queue entirely (each connection has its own thread), so health checks
  answer even while the queue is saturated.

The daemon always runs with telemetry collection enabled: work requests
(``submit``/``fleet``) are timed into the ``daemon_request_seconds``
histogram and classified warm (every terminal outcome served from cache)
vs cold; busy/timeout/cancelled/disconnect outcomes, queue wait and depth,
and pool rebuilds are all counted too, and ``status`` embeds a full
metrics snapshot plus service-health fields.

The CLI degrades gracefully: when no daemon is listening on the socket
(``$REPRO_DAEMON_SOCKET`` or the per-user default), or the daemon answers
busy/timeout/stale, execution happens inline in the invoking process,
bit-identically.  Fault injection for all of the above is driven by
:mod:`repro.engine.faults` (``$REPRO_FAULTS``).
"""

from __future__ import annotations

import json
import os
import random
import signal
import socket
import socketserver
import subprocess
import sys
import tempfile
import threading
import time
import traceback
from collections import OrderedDict, deque
from pathlib import Path
from typing import Any, BinaryIO, Iterator

from repro import telemetry
from repro.engine import faults as faults_mod
from repro.engine.cache import ResultCache, default_cache_dir
from repro.engine.executor import CancelToken, PoolSupervisor
from repro.engine.jobs import ExperimentJob
from repro.engine.sharding import iter_sharded

#: Environment override for the daemon socket location.
SOCKET_ENV = "REPRO_DAEMON_SOCKET"

#: Protocol version stamped on every request/response frame.
PROTOCOL_VERSION = 2

#: Frame types that settle a submit/fleet stream.
TERMINAL_FRAME_TYPES = frozenset(
    {"done", "error", "stale", "busy", "timeout", "cancelled"}
)

#: Frames larger than this are rejected (corrupt length headers fail fast).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class DaemonError(RuntimeError):
    """Daemon unreachable, already running, or a protocol violation."""


def default_socket_path() -> Path:
    """Socket path from ``$REPRO_DAEMON_SOCKET``, else a private per-user dir.

    Without the override, the socket lives inside a directory only the
    current user can enter (``$XDG_RUNTIME_DIR`` when set, else a ``0700``
    per-user directory under the temp dir) -- a predictable socket directly
    in world-writable ``/tmp`` could be squatted by another local user, who
    could then spoof experiment results to auto-routing clients.  Raises
    :class:`DaemonError` if the directory exists but is not exclusively
    ours.
    """
    env = os.environ.get(SOCKET_ENV)
    if env:
        return Path(env)
    runtime = os.environ.get("XDG_RUNTIME_DIR")
    if runtime:
        return Path(runtime) / "repro-daemon.sock"
    if not hasattr(os, "getuid"):  # pragma: no cover - daemon needs AF_UNIX anyway
        return Path(tempfile.gettempdir()) / "repro-daemon.sock"
    directory = Path(tempfile.gettempdir()) / f"repro-daemon-{os.getuid()}"
    try:
        directory.mkdir(mode=0o700, exist_ok=True)
        stat = directory.stat()
    except OSError as error:
        raise DaemonError(f"cannot secure daemon directory {directory}: {error}") from None
    if stat.st_uid != os.getuid() or stat.st_mode & 0o077:
        raise DaemonError(
            f"daemon directory {directory} is not exclusively owned by this "
            f"user (uid {stat.st_uid}, mode {stat.st_mode & 0o777:o}); refusing "
            f"to trust it -- set ${SOCKET_ENV} to a private path instead"
        )
    return directory / "daemon.sock"


def send_frame(wfile: BinaryIO, message: dict[str, Any]) -> None:
    """Write one length-prefixed NDJSON frame."""
    data = json.dumps(message, separators=(",", ":")).encode() + b"\n"
    wfile.write(f"{len(data)}\n".encode() + data)
    wfile.flush()


def recv_frame(rfile: BinaryIO) -> dict[str, Any] | None:
    """Read one frame; ``None`` on a clean EOF, :class:`DaemonError` on junk."""
    header = rfile.readline()
    if not header:
        return None
    try:
        length = int(header)
    except ValueError:
        raise DaemonError(f"bad frame length header: {header!r}") from None
    if not 0 < length <= MAX_FRAME_BYTES:
        raise DaemonError(f"frame length {length} out of range")
    data = rfile.read(length)
    if len(data) < length:
        raise DaemonError("truncated frame")
    try:
        message = json.loads(data)
    except ValueError as error:
        raise DaemonError(f"frame is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise DaemonError("frame must be a JSON object")
    return message


class _ClientGone(Exception):
    """The peer of this connection vanished (or a fault dropped it)."""


def _pid_file(socket_path: Path) -> Path:
    return socket_path.with_name(socket_path.name + ".pid")


def _lock_file(socket_path: Path) -> Path:
    return socket_path.with_name(socket_path.name + ".lock")


def _read_pid_file(socket_path: Path) -> int | None:
    try:
        return int(_pid_file(socket_path).read_text().strip())
    except (OSError, ValueError):
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - someone else's process
        return True
    return True


def _acquire_bind_lock(socket_path: Path) -> Path:
    """Take the ``O_EXCL`` lock guarding stale-socket reclaim + bind.

    Two concurrent ``daemon start`` invocations racing over the same dead
    socket must not both reclaim it: whoever creates ``<socket>.lock`` wins
    the reclaim/bind window and the loser fails loudly.  A lock whose
    recorded owner pid is dead (daemon crashed inside the window) is stolen
    once.  Returns the lock path; the caller must unlink it after binding.
    """
    lock_path = _lock_file(socket_path)
    socket_path.parent.mkdir(parents=True, exist_ok=True)
    for attempt in range(3):
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                owner = int(lock_path.read_text().strip() or "0")
            except (OSError, ValueError):
                owner = 0
            if owner and _pid_alive(owner):
                raise DaemonError(
                    f"another daemon is binding {socket_path} "
                    f"(lock {lock_path} held by pid {owner})"
                )
            if owner == 0:
                # Freshly created but not yet stamped with a pid -- give the
                # creator a beat before declaring the lock stale.
                time.sleep(0.05)
                try:
                    owner = int(lock_path.read_text().strip() or "0")
                except (OSError, ValueError):
                    owner = 0
                if owner and _pid_alive(owner):
                    raise DaemonError(
                        f"another daemon is binding {socket_path} "
                        f"(lock {lock_path} held by pid {owner})"
                    )
            try:
                lock_path.unlink()
            except OSError:
                pass
            continue
        os.write(fd, str(os.getpid()).encode())
        os.close(fd)
        return lock_path
    raise DaemonError(f"could not acquire bind lock {lock_path}")


class RequestQueue:
    """Bounded FIFO admission control for the daemon's work requests.

    At most ``max_inflight`` requests execute concurrently; up to
    ``queue_depth`` more wait in arrival order.  :meth:`enter` returns
    ``"ok"`` once admitted, ``"busy"`` immediately on overflow, or the
    cancel reason (``"timeout"``/``"cancelled"``/``"disconnected"``) if the
    request's token fires while it waits.  Queue depth and in-flight count
    are mirrored into gauges; admitted requests record their queue wait.
    """

    def __init__(self, max_inflight: int = 4, queue_depth: int = 16):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self._cond = threading.Condition()
        self._waiting: "deque[CancelToken]" = deque()
        self._inflight = 0

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queued(self) -> int:
        return len(self._waiting)

    def _update_gauges(self) -> None:
        if telemetry.collection_enabled():
            reg = telemetry.registry()
            reg.gauge(telemetry.DAEMON_INFLIGHT).set(self._inflight)
            reg.gauge(telemetry.DAEMON_QUEUE_DEPTH).set(len(self._waiting))

    def enter(self, token: CancelToken) -> str:
        start = time.perf_counter()
        with self._cond:
            if self._inflight < self.max_inflight and not self._waiting:
                self._inflight += 1
                self._update_gauges()
                self._observe_wait(start)
                return "ok"
            if len(self._waiting) >= self.queue_depth:
                return "busy"
            self._waiting.append(token)
            self._update_gauges()
            try:
                while True:
                    if token.poll():
                        return token.reason or "cancelled"
                    if self._waiting and self._waiting[0] is token and (
                        self._inflight < self.max_inflight
                    ):
                        self._waiting.popleft()
                        self._inflight += 1
                        self._observe_wait(start)
                        return "ok"
                    # Timed wait so token deadlines fire even with no churn.
                    self._cond.wait(0.05)
            finally:
                if token in self._waiting:
                    self._waiting.remove(token)
                self._update_gauges()
                self._cond.notify_all()

    def leave(self) -> None:
        with self._cond:
            self._inflight -= 1
            self._update_gauges()
            self._cond.notify_all()

    @staticmethod
    def _observe_wait(start: float) -> None:
        if telemetry.collection_enabled():
            telemetry.registry().histogram(
                telemetry.DAEMON_QUEUE_WAIT_SECONDS
            ).observe(time.perf_counter() - start)


class MemoryIndexCache:
    """Write-through in-memory LRU index over an on-disk :class:`ResultCache`.

    Duck-types the cache surface the engine uses (``get``/``put``/``stats``)
    while keeping decoded result values in process memory keyed by their
    content address, so a warm lookup touches no file and re-runs no
    fingerprint -- the disk store stays the durable source of truth and is
    still written through on every ``put``.  The index holds at most
    ``max_entries`` values (least-recently-used evicted first), so a
    long-lived daemon's memory stays bounded even as the disk store churns.
    """

    def __init__(self, disk: ResultCache, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.disk = disk
        self.max_entries = max_entries
        self._index: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.memory_hits = 0
        self.disk_hits = 0

    @property
    def stats(self):
        return self.disk.stats

    def __len__(self) -> int:
        return len(self._index)

    def get(self, job) -> Any | None:
        key = self.disk.key_for(job)
        with self._lock:
            if key in self._index:
                self.memory_hits += 1
                self.stats.hits += 1
                self._index.move_to_end(key)
                return self._index[key]
        value = self.disk.get(job)
        if value is not None:
            with self._lock:
                self.disk_hits += 1
                self._store(key, value)
        return value

    def put(self, job, value) -> None:
        self.disk.put(job, value)
        with self._lock:
            self._store(self.disk.key_for(job), value)

    def _store(self, key: str, value) -> None:
        """Insert under the lock, evicting the LRU tail past ``max_entries``."""
        self._index[key] = value
        self._index.move_to_end(key)
        while len(self._index) > self.max_entries:
            self._index.popitem(last=False)


class _Handler(socketserver.StreamRequestHandler):
    """One connection: a single request frame, then a response stream."""

    def setup(self) -> None:
        super().setup()
        self._frames_sent = 0
        self._record: "telemetry.RequestRecord | None" = None
        self._record_base = (0, 0, 0)

    def handle(self) -> None:  # pragma: no cover - exercised via the client
        daemon: ExperimentDaemon = self.server.daemon  # type: ignore[attr-defined]
        if daemon.faults.on_connection():
            return  # injected accept refusal: close without responding
        try:
            self._handle(daemon)
        except _ClientGone:
            pass  # peer vanished; per-request cleanup already happened

    def _handle(self, daemon: "ExperimentDaemon") -> None:
        try:
            request = recv_frame(self.rfile)
        except DaemonError as error:
            self._send({"type": "error", "message": str(error)})
            return
        if request is None:
            return
        daemon.count_request()
        op = request.get("op")
        try:
            if op == "ping":
                self._send({"type": "pong", "v": PROTOCOL_VERSION, "pid": os.getpid()})
            elif op == "status":
                self._send({"type": "status", **daemon.status()})
            elif op == "metrics":
                self._send(
                    {
                        "type": "metrics",
                        "text": telemetry.registry().render_prometheus(),
                    }
                )
            elif op == "dump":
                self._send({"type": "dump", **daemon.recorder.dump()})
            elif op == "tail":
                self._handle_tail(daemon, request)
            elif op in ("submit", "fleet"):
                self._handle_work(daemon, request, op)
            elif op == "cancel":
                request_id = str(request.get("request_id") or "")
                cancelled = daemon.cancel_request(request_id)
                self._send(
                    {"type": "ok", "request_id": request_id, "cancelled": cancelled}
                )
            elif op == "shutdown":
                self._send({"type": "ok", "pid": os.getpid()})
                daemon.request_shutdown()
            else:
                self._send({"type": "error", "message": f"unknown op {op!r}"})
        except _ClientGone:
            raise
        except BrokenPipeError:
            pass  # client went away mid-stream; nothing to clean up here
        except Exception as error:
            daemon.recorder.note_error(type(error).__name__, str(error))
            self._send({"type": "error", "message": traceback.format_exc()})

    def _handle_tail(
        self, daemon: "ExperimentDaemon", request: dict[str, Any]
    ) -> None:
        """Serve the newest flight-recorder records; optionally follow live.

        The initial ``tail`` frame carries the last ``count`` records and the
        recorder's sequence cursor.  With ``follow``, the connection then
        streams one ``record`` frame per completed request as they land; a
        periodic ``keepalive`` frame doubles as disconnect detection (a gone
        client surfaces as :class:`_ClientGone` on the next send), so an
        idle daemon cannot strand follower threads forever.
        """
        count = request.get("count", 10)
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            self._send({"type": "error", "message": "count must be a non-negative int"})
            return
        records = daemon.recorder.records(last=count)
        cursor = daemon.recorder.latest_seq()
        self._send({"type": "tail", "records": records, "seq": cursor})
        if not request.get("follow") or not daemon.recorder.enabled:
            return
        idle_rounds = 0
        while True:
            fresh = daemon.recorder.wait_for_newer(cursor, timeout=0.5)
            if fresh:
                idle_rounds = 0
                for record in fresh:
                    self._send({"type": "record", "record": record})
                cursor = fresh[-1]["seq"]
            else:
                idle_rounds += 1
                if idle_rounds >= 4:  # ~2s idle: probe the peer
                    idle_rounds = 0
                    self._send({"type": "keepalive"})

    def _handle_work(
        self, daemon: "ExperimentDaemon", request: dict[str, Any], op: str
    ) -> None:
        """Admit, run, and settle one work request.

        Flow: validate (error/stale frames bypass the queue) -> register a
        :class:`~repro.engine.executor.CancelToken` under the request id ->
        ``accepted`` frame -> FIFO admission (overflow answers ``busy``,
        cancellation while queued answers ``timeout``/``cancelled``) ->
        stream events with the token threaded through the engine -> settle
        with ``done`` or the structured cancellation frame.  A client that
        disconnects mid-stream cancels its own token; the stream drains
        silently (in-flight shards still land in the cache) and no settle
        frame is sent.

        A request is *warm* when every terminal outcome was served from
        cache; refused/busy/cancelled requests count as neither.  The run
        helpers return the ``done`` frame instead of sending it so every
        metric is updated *before* the client sees the request complete.

        Trace context: the client's ``trace_id`` (minted fresh when it sent
        none) is installed in this handler thread's context for the whole
        request -- the ``daemon.request`` span and, through the executor's
        submit path, every pool-worker span record it -- and stamped on the
        ``accepted``/``event``/terminal frames.  The flight recorder's
        :class:`~repro.telemetry.RequestRecord` opens once the request id is
        registered and is finalized *before* the terminal frame goes out
        (so a client that dumps the moment it sees ``done`` finds the
        record already in the ring), with an idempotent ``finally`` safety
        net so every exit path -- including disconnects and handler crashes,
        which send no terminal frame -- still leaves a record.
        """
        reg = telemetry.registry()
        reg.counter(telemetry.DAEMON_REQUESTS).inc()
        prepared = (
            self._prepare_submit(daemon, request)
            if op == "submit"
            else self._prepare_fleet(daemon, request)
        )
        if prepared is None:
            return
        timeout_s = request.get("timeout_s")
        if timeout_s is not None and (
            not isinstance(timeout_s, (int, float)) or timeout_s <= 0
        ):
            self._refuse(daemon, "timeout_s must be a positive number")
            return
        trace_id = request.get("trace_id")
        if not (isinstance(trace_id, str) and trace_id):
            trace_id = telemetry.new_trace_id()
        parent_span = request.get("parent_span")
        if not isinstance(parent_span, str):
            parent_span = None
        deadline = time.monotonic() + timeout_s if timeout_s is not None else None
        token = CancelToken(deadline=deadline)
        request_id = str(request.get("request_id") or daemon.next_request_id())
        if not daemon.register_request(request_id, token):
            self._refuse(
                daemon, f"request_id {request_id!r} is already in flight"
            )
            return
        trace_token = telemetry.set_trace_id(trace_id)
        record = daemon.recorder.begin(request_id, op, trace_id)
        self._record = record
        self._record_base = (
            reg.counter(telemetry.ENGINE_JOB_RETRIES).value,
            reg.counter(telemetry.FAULTS_INJECTED).value,
            daemon.supervisor.rebuilds,
        )
        try:
            self._send(
                {
                    "type": "accepted",
                    "request_id": request_id,
                    "trace_id": trace_id,
                    "inflight": daemon.queue.inflight,
                    "queued": daemon.queue.queued,
                }
            )
            queue_t0 = time.perf_counter()
            admission = daemon.queue.enter(token)
            if record is not None:
                record.queue_wait_s = time.perf_counter() - queue_t0
            if admission == "busy":
                reg.counter(telemetry.DAEMON_REQUESTS_BUSY).inc()
                if record is not None:
                    record.outcome = "busy"
                self._complete_record(daemon, "busy")
                self._send(
                    {
                        "type": "busy",
                        "request_id": request_id,
                        "trace_id": trace_id,
                        "message": (
                            f"daemon at capacity ({daemon.queue.max_inflight} "
                            f"in flight, {daemon.queue.queued} queued, "
                            f"depth limit {daemon.queue.queue_depth})"
                        ),
                    }
                )
                return
            if admission != "ok":
                self._settle_cancelled(
                    reg, daemon, request_id, token, phase="queued",
                    trace_id=trace_id,
                )
                return
            try:
                start = time.perf_counter()
                with telemetry.span(
                    "daemon.request", kind="daemon", parent=parent_span,
                    op=op, request_id=request_id,
                ):
                    done = self._run_work(daemon, request, op, prepared, token)
                run_s = time.perf_counter() - start
                if record is not None:
                    record.run_s = run_s
                reg.histogram(telemetry.DAEMON_REQUEST_SECONDS).observe(run_s)
            finally:
                daemon.queue.leave()
            if token.cancelled:
                self._settle_cancelled(
                    reg, daemon, request_id, token, phase="running",
                    trace_id=trace_id,
                )
                return
            if done is not None:
                warm = done["misses"] == 0
                reg.counter(
                    telemetry.DAEMON_REQUESTS_WARM
                    if warm
                    else telemetry.DAEMON_REQUESTS_COLD
                ).inc()
                if record is not None:
                    record.outcome = "done"
                    record.warm = warm
                    record.hits = done["hits"]
                    record.misses = done["misses"]
                    record.memory_hits = done["memory_hits"]
                self._complete_record(daemon, str(done.get("type")))
                self._send({**done, "request_id": request_id, "trace_id": trace_id})
        except _ClientGone:
            token.cancel("disconnected")
            reg.counter(telemetry.DAEMON_DISCONNECTS).inc()
            if record is not None:
                record.outcome = "disconnected"
            raise
        except Exception as error:
            if record is not None:
                record.outcome = "error"
                record.fail(type(error).__name__, str(error))
            raise
        finally:
            self._complete_record(daemon, None)
            daemon.unregister_request(request_id)
            telemetry.reset_trace_id(trace_token)

    def _refuse(self, daemon: "ExperimentDaemon", message: str) -> None:
        """Refuse a request at validation with an ``error`` frame.

        Refusals happen before a request id exists, so they leave no ring
        record -- but they do land in the flight recorder's error audit, so
        ``daemon status`` still surfaces a client hammering the daemon with
        malformed requests as its ``last_error``.
        """
        daemon.recorder.note_error("bad_request", message)
        self._send({"type": "error", "message": message})

    def _complete_record(self, daemon: "ExperimentDaemon", terminal: str | None) -> None:
        """Finalize the open request record into the flight recorder.

        Captures the counter deltas this request incurred, pre-counts the
        terminal frame (``terminal``) that is about to be sent, and detaches
        the record from the handler so :meth:`_send` stops tallying into it.
        Runs *before* the terminal frame so the ring already holds the
        record when the client observes the request finish; the caller's
        ``finally`` re-invokes it harmlessly (no open record -> no-op, and
        :meth:`FlightRecorder.complete` is idempotent besides).
        """
        record, self._record = self._record, None
        if record is None:
            return
        reg = telemetry.registry()
        retries0, faults0, rebuilds0 = self._record_base
        record.retries = reg.counter(telemetry.ENGINE_JOB_RETRIES).value - retries0
        record.faults = reg.counter(telemetry.FAULTS_INJECTED).value - faults0
        record.rebuilds = daemon.supervisor.rebuilds - rebuilds0
        if terminal is not None:
            record.count_frame(terminal)
        daemon.recorder.complete(record)

    def _settle_cancelled(
        self,
        reg,
        daemon: "ExperimentDaemon",
        request_id: str,
        token: CancelToken,
        *,
        phase: str,
        trace_id: str | None = None,
    ) -> None:
        """Send the structured frame matching why this request was aborted."""
        reason = token.reason or "cancelled"
        if self._record is not None:
            self._record.outcome = reason
        if reason == "timeout":
            reg.counter(telemetry.DAEMON_REQUESTS_TIMEOUT).inc()
            self._complete_record(daemon, "timeout")
            self._send(
                {
                    "type": "timeout",
                    "request_id": request_id,
                    "trace_id": trace_id,
                    "phase": phase,
                    "message": f"request deadline passed while {phase}",
                }
            )
        elif reason == "disconnected":
            reg.counter(telemetry.DAEMON_DISCONNECTS).inc()
            self._complete_record(daemon, None)  # the peer is gone; no frame
        else:
            reg.counter(telemetry.DAEMON_REQUESTS_CANCELLED).inc()
            self._complete_record(daemon, "cancelled")
            self._send(
                {
                    "type": "cancelled",
                    "request_id": request_id,
                    "trace_id": trace_id,
                    "phase": phase,
                }
            )

    def _send(self, message: dict[str, Any]) -> None:
        daemon: ExperimentDaemon = self.server.daemon  # type: ignore[attr-defined]
        if daemon.faults.on_frame_send(self._frames_sent):
            # Injected drop: tear the connection down as a crashed peer would.
            try:
                self.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            raise _ClientGone("injected connection drop")
        try:
            send_frame(self.wfile, message)
        except (BrokenPipeError, ConnectionResetError, OSError) as error:
            raise _ClientGone(str(error)) from None
        self._frames_sent += 1
        if self._record is not None:
            self._record.count_frame(str(message.get("type")))

    def _check_shard_size(self, request: dict[str, Any]) -> bool:
        shard_size = request.get("shard_size")
        if shard_size is not None and (not isinstance(shard_size, int) or shard_size <= 0):
            self._send({"type": "error", "message": "shard_size must be a positive int"})
            return False
        return True

    def _check_code_version(
        self, daemon: "ExperimentDaemon", request: dict[str, Any]
    ) -> bool:
        # A client built from edited sources must not be served results (or
        # computations) from the daemon's stale code: refuse so the caller
        # can fall back inline and the operator can restart the daemon.
        code_version = request.get("code_version")
        daemon_version = daemon.cache.disk.code_version
        if code_version is not None and code_version != daemon_version:
            frame = {
                "type": "stale",
                "message": "daemon runs a different source fingerprint "
                "(package sources changed since daemon start); restart it "
                "with: daemon stop && daemon start",
                "daemon_code_version": daemon_version,
            }
            # Refused before trace adoption, but a client-sent trace id is
            # still echoed so the refusal joins the client's request tree.
            trace_id = request.get("trace_id")
            if isinstance(trace_id, str) and trace_id:
                frame["trace_id"] = trace_id
            self._send(frame)
            return False
        return True

    def _prepare_submit(
        self, daemon: "ExperimentDaemon", request: dict[str, Any]
    ) -> list[ExperimentJob] | None:
        """Validate a submit request into its root jobs (``None`` = refused,
        an error/stale frame already went out).  Validation happens *before*
        queue admission so malformed requests never occupy a slot."""
        from repro.experiments.registry import EXPERIMENTS

        experiments = request.get("experiments") or []
        unknown = [eid for eid in experiments if eid not in EXPERIMENTS]
        if not experiments or unknown:
            self._refuse(
                daemon,
                f"unknown experiment(s): {', '.join(unknown)}"
                if unknown
                else "submit requires a non-empty experiments list",
            )
            return None
        if not self._check_shard_size(request):
            return None
        if not self._check_code_version(daemon, request):
            return None
        quick = bool(request.get("quick", True))
        return [ExperimentJob(eid, quick=quick) for eid in experiments]

    def _prepare_fleet(
        self, daemon: "ExperimentDaemon", request: dict[str, Any]
    ) -> list[Any] | None:
        """Validate a fleet request into its single traffic job (``None`` =
        refused)."""
        from repro.engine.jobs import FleetTrafficJob

        config = request.get("job")
        if not isinstance(config, dict):
            self._refuse(daemon, "fleet requires a job config object")
            return None
        if not self._check_shard_size(request):
            return None
        if not self._check_code_version(daemon, request):
            return None
        try:
            job = FleetTrafficJob(**config)
        except (TypeError, ValueError) as error:
            self._refuse(daemon, f"bad fleet job config: {error}")
            return None
        return [job]

    def _run_work(
        self,
        daemon: "ExperimentDaemon",
        request: dict[str, Any],
        op: str,
        jobs: list[Any],
        token: CancelToken,
    ) -> dict[str, Any] | None:
        """Stream one admitted request's events; returns the unsent ``done``
        frame, or ``None`` when the request was cancelled mid-stream (the
        caller settles it from the token).

        A failed frame send marks the client gone and cancels the token, but
        the event stream is still drained to completion silently: in-flight
        shards land in the cache (a reconnecting client gets them warm) and
        queued shards are cancelled by the engine's drain contract.

        For fleet requests the done frame carries this request's per-auth
        latency histogram -- the delta of the daemon registry's
        ``fleet_auth_request_seconds`` across the run (exact bucket
        arithmetic; like ``memory_hits`` it is only attributable to one
        request while requests do not overlap).
        """
        reg = telemetry.registry()
        record = self._record
        trace_id = telemetry.current_trace_id()
        roots = {id(job) for job in jobs}
        memory0 = daemon.cache.memory_hits
        auth_latency = before = None
        if op == "fleet":
            auth_latency = reg.histogram(telemetry.FLEET_AUTH_SECONDS)
            before = telemetry.Histogram.from_dict(auth_latency.to_dict())
        start = time.perf_counter()
        served = computed = 0
        client_gone = False
        for event in iter_sharded(
            jobs,
            shard_size=request.get("shard_size"),
            workers=daemon.workers,
            cache=daemon.cache,
            fail_fast=bool(request.get("fail_fast", True)),
            ordered=bool(request.get("ordered", False)) if op == "submit" else False,
            pool=daemon.supervisor,
            cancel=token,
        ):
            if event.terminal:
                daemon.count_job()
                if event.outcome is not None and event.outcome.cached:
                    served += 1
                else:
                    computed += 1
                if record is not None:
                    record.jobs += 1
                    if event.outcome is not None and not event.outcome.ok:
                        record.failed_jobs += 1
                        record.fail("job_failure", event.outcome.error or "job failed")
            if client_gone:
                continue
            include_value = (
                event.terminal
                and id(event.job) in roots
                and event.outcome is not None
                and event.outcome.ok
            )
            try:
                self._send(
                    {
                        "type": "event",
                        "trace_id": trace_id,
                        "event": event.to_dict(include_value=include_value),
                    }
                )
            except _ClientGone:
                client_gone = True
                token.cancel("disconnected")
        if client_gone or token.cancelled:
            return None
        # hits/misses are derived from this request's own events (exact even
        # under concurrent submits); memory_hits is a global-counter delta and
        # therefore only attributable when requests do not overlap.
        done = {
            "type": "done",
            "hits": served,
            "misses": computed,
            "memory_hits": daemon.cache.memory_hits - memory0,
        }
        if op == "fleet":
            done["elapsed_s"] = round(time.perf_counter() - start, 6)
            done["latency"] = auth_latency.subtract(before).to_dict()
        return done


if hasattr(socketserver, "ThreadingUnixStreamServer"):

    class _Server(socketserver.ThreadingUnixStreamServer):
        daemon_threads = True

else:  # pragma: no cover - platforms without AF_UNIX: daemon mode unavailable
    _Server = None


class ExperimentDaemon:
    """Long-lived experiment server bound to one unix socket.

    Owns the self-healing process pool (:class:`PoolSupervisor`), the
    memory-indexed cache, and the admission queue; every connection is
    handled on its own thread, all sharing the pool (each request waits only
    on its own futures, so concurrent submits interleave safely).
    """

    def __init__(
        self,
        socket_path: str | Path | None = None,
        cache_dir: str | Path | None = None,
        workers: int = 2,
        trace: str | Path | None = None,
        max_inflight: int = 4,
        queue_depth: int = 16,
        retry_attempts: int = 3,
        retry_backoff_s: float = 0.1,
        faults: "faults_mod.FaultInjector | None" = None,
        recorder_capacity: int = 256,
        slow_request_s: float = 1.0,
    ):
        self.socket_path = Path(socket_path) if socket_path else default_socket_path()
        self.cache = MemoryIndexCache(
            ResultCache(Path(cache_dir) if cache_dir else default_cache_dir())
        )
        self.workers = max(1, int(workers))
        self.supervisor = PoolSupervisor(
            self.workers, max_attempts=max(1, int(retry_attempts)),
            backoff_s=retry_backoff_s,
        )
        self.queue = RequestQueue(max_inflight=max_inflight, queue_depth=queue_depth)
        self.recorder = telemetry.FlightRecorder(
            capacity=recorder_capacity, slow_threshold_s=slow_request_s
        )
        self.faults = faults if faults is not None else faults_mod.injector()
        self.started_at = time.time()
        self.requests = 0
        self.jobs_completed = 0
        self._counters_lock = threading.Lock()
        self._requests_lock = threading.Lock()
        self._active_requests: dict[str, CancelToken] = {}
        self._request_seq = 0
        self._server: _Server | None = None
        # A service measures itself: collection is always on in the daemon
        # (the cost is a few counter bumps per request, and status/metrics
        # frames are only meaningful with data behind them).
        telemetry.enable_collection()
        self.trace_path = Path(trace) if trace else None
        if self.trace_path is not None:
            telemetry.enable_tracing(telemetry.TraceWriter(self.trace_path))

    @property
    def pool(self) -> PoolSupervisor:
        """The work pool (supervisor-wrapped; kept for API compatibility)."""
        return self.supervisor

    def count_request(self) -> None:
        with self._counters_lock:
            self.requests += 1

    def count_job(self) -> None:
        with self._counters_lock:
            self.jobs_completed += 1

    def next_request_id(self) -> str:
        with self._requests_lock:
            self._request_seq += 1
            return f"req-{self._request_seq}"

    def register_request(self, request_id: str, token: CancelToken) -> bool:
        """Track an in-flight request; ``False`` when the id is taken."""
        with self._requests_lock:
            if request_id in self._active_requests:
                return False
            self._active_requests[request_id] = token
            return True

    def unregister_request(self, request_id: str) -> None:
        with self._requests_lock:
            self._active_requests.pop(request_id, None)

    def cancel_request(self, request_id: str) -> bool:
        """Fire the cancel token of an in-flight request (the ``cancel`` op)."""
        with self._requests_lock:
            token = self._active_requests.get(request_id)
        if token is None:
            return False
        token.cancel("cancelled")
        return True

    def status(self) -> dict[str, Any]:
        with self._requests_lock:
            active = len(self._active_requests)
        return {
            "v": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "socket": str(self.socket_path),
            "cache_dir": str(self.cache.disk.cache_dir),
            "workers": self.workers,
            "uptime_s": round(time.time() - self.started_at, 3),
            "requests": self.requests,
            "jobs_completed": self.jobs_completed,
            "inflight": self.queue.inflight,
            "queued": self.queue.queued,
            "active_requests": active,
            "max_inflight": self.queue.max_inflight,
            "queue_depth_limit": self.queue.queue_depth,
            "pool_size": self.workers,
            "pool_rebuilds": self.supervisor.rebuilds,
            "retry_attempts": self.supervisor.max_attempts,
            "index_entries": len(self.cache),
            "memory_hits": self.cache.memory_hits,
            "disk_hits": self.cache.disk_hits,
            "disk_misses": self.cache.stats.misses,
            "recorder": self.recorder.status(),
            "metrics": telemetry.registry().snapshot(),
        }

    def request_shutdown(self) -> None:
        """Stop the accept loop (callable from a handler thread)."""
        server = self._server
        if server is not None:
            threading.Thread(target=server.shutdown, daemon=True).start()

    def serve_forever(self) -> None:
        """Bind the socket and serve until :meth:`request_shutdown`.

        Stale-socket reclaim and the bind itself happen under the
        ``<socket>.lock`` ``O_EXCL`` lock file, so two daemons racing over
        the same dead socket cannot both reclaim it: one binds, the other
        fails loudly.  A live socket raises :class:`DaemonError` instead of
        hijacking it.  The daemon's pid is published next to the socket
        (``<socket>.pid``) so a wedged daemon can be force-stopped.
        """
        if _Server is None:
            raise DaemonError("daemon mode requires AF_UNIX socket support")
        lock_path = _acquire_bind_lock(self.socket_path)
        try:
            if self.socket_path.exists():
                if DaemonClient(self.socket_path, timeout=5.0).is_running():
                    raise DaemonError(
                        f"daemon already running on {self.socket_path}"
                    )
                self.socket_path.unlink()
            self._server = _Server(str(self.socket_path), _Handler)
        finally:
            try:
                lock_path.unlink()
            except OSError:
                pass
        self._server.daemon = self  # type: ignore[attr-defined]
        pid_path = _pid_file(self.socket_path)
        pid_path.write_text(f"{os.getpid()}\n")
        # Fork the workers and import the experiment drivers now, so even the
        # first request is served warm (the source fingerprint was already
        # hashed when the cache was constructed).
        self.supervisor.warm()
        from repro.experiments import registry  # noqa: F401 - pre-import drivers

        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self._server.server_close()
            self._server = None
            for leftover in (self.socket_path, pid_path):
                try:
                    leftover.unlink()
                except OSError:
                    pass
            self.supervisor.shutdown(wait=False, cancel_futures=True)


class DaemonClient:
    """Client side of the daemon protocol.

    ``timeout`` bounds every read on an established stream (a wedged daemon
    cannot hang the client forever); ``connect_timeout`` bounds the initial
    connect separately so liveness probes stay fast.  One-shot requests can
    opt into jittered retry-backoff on transient errors (refused accepts,
    truncated responses) via ``retries``.
    """

    def __init__(
        self,
        socket_path: str | Path | None = None,
        timeout: float = 300.0,
        connect_timeout: float = 10.0,
    ):
        self.socket_path = Path(socket_path) if socket_path else default_socket_path()
        self.timeout = timeout
        self.connect_timeout = connect_timeout

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.connect_timeout)
        try:
            sock.connect(str(self.socket_path))
        except OSError as error:
            sock.close()
            raise DaemonError(
                f"no daemon listening on {self.socket_path}: {error}"
            ) from None
        sock.settimeout(self.timeout)
        return sock

    def request(
        self,
        message: dict[str, Any],
        *,
        retries: int = 0,
        backoff_s: float = 0.05,
    ) -> dict[str, Any]:
        """One-shot request returning the single response frame.

        With ``retries`` transient failures (connection refused/reset,
        truncated response) are retried after exponential backoff with full
        jitter -- ``uniform(0, backoff_s * 2**attempt)`` -- so a burst of
        retrying clients does not stampede the daemon in lockstep.
        """
        attempt = 0
        while True:
            try:
                return self._request_once(message)
            except DaemonError:
                if attempt >= retries:
                    raise
                time.sleep(random.uniform(0, backoff_s * (2 ** attempt)))
                attempt += 1

    def _request_once(self, message: dict[str, Any]) -> dict[str, Any]:
        try:
            with self._connect() as sock, sock.makefile("rwb") as stream:
                send_frame(stream, {"v": PROTOCOL_VERSION, **message})
                response = recv_frame(stream)
        except OSError as error:
            # e.g. the daemon tore the connection down mid-exchange (shutdown)
            raise DaemonError(f"daemon connection failed: {error}") from None
        if response is None:
            raise DaemonError("daemon closed the connection without responding")
        return response

    def _stream(self, request: dict[str, Any]) -> Iterator[dict[str, Any]]:
        """Send one work request and yield frames through the terminal one.

        Terminal frames: ``done`` on success, or the structured refusal /
        abort frames (``error``, ``stale``, ``busy``, ``timeout``,
        ``cancelled``).  A stream that ends without one raises
        :class:`DaemonError` -- the daemon died or dropped the connection.
        """
        try:
            with self._connect() as sock, sock.makefile("rwb") as stream:
                send_frame(stream, request)
                while True:
                    frame = recv_frame(stream)
                    if frame is None:
                        raise DaemonError("daemon stream ended before the done frame")
                    yield frame
                    if frame.get("type") in TERMINAL_FRAME_TYPES:
                        return
        except OSError as error:
            raise DaemonError(f"daemon connection failed: {error}") from None

    def submit(
        self,
        experiments: list[str],
        *,
        quick: bool = True,
        shard_size: int | None = None,
        ordered: bool = False,
        fail_fast: bool = True,
        code_version: str | None = None,
        timeout_s: float | None = None,
        request_id: str | None = None,
        trace_id: str | None = None,
        parent_span: str | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Submit experiments; yield ``event`` frames then the ``done`` frame.

        Pass the client's :func:`~repro.engine.cache.source_fingerprint` as
        ``code_version`` to be refused (a single ``stale`` frame) when the
        daemon was started from different package sources -- a stale daemon
        must not silently serve results keyed under old code.  ``timeout_s``
        sets a server-side deadline (a ``timeout`` frame settles the
        stream); ``request_id`` names the request for the ``cancel`` op
        (the daemon assigns one otherwise, echoed in ``accepted``).
        ``trace_id``/``parent_span`` carry the client's trace context so
        daemon + worker spans join the client's tree (the daemon mints a
        trace id itself otherwise; frames echo it either way).
        """
        return self._stream(
            {
                "v": PROTOCOL_VERSION,
                "op": "submit",
                "experiments": list(experiments),
                "quick": quick,
                "shard_size": shard_size,
                "ordered": ordered,
                "fail_fast": fail_fast,
                "code_version": code_version,
                "timeout_s": timeout_s,
                "request_id": request_id,
                "trace_id": trace_id,
                "parent_span": parent_span,
            }
        )

    def fleet(
        self,
        job_config: dict[str, Any],
        *,
        shard_size: int | None = None,
        code_version: str | None = None,
        timeout_s: float | None = None,
        request_id: str | None = None,
        trace_id: str | None = None,
        parent_span: str | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Submit one fleet traffic job config; yield ``event`` frames then
        the ``done`` frame (which carries the request's auth-latency
        histogram).  Staleness/deadline/cancel/trace-context semantics match
        :meth:`submit`.
        """
        return self._stream(
            {
                "v": PROTOCOL_VERSION,
                "op": "fleet",
                "job": dict(job_config),
                "shard_size": shard_size,
                "code_version": code_version,
                "timeout_s": timeout_s,
                "request_id": request_id,
                "trace_id": trace_id,
                "parent_span": parent_span,
            }
        )

    def cancel(self, request_id: str) -> bool:
        """Cancel an in-flight request by id; ``True`` when one was found."""
        response = self.request({"op": "cancel", "request_id": request_id})
        if response.get("type") != "ok":
            raise DaemonError(f"unexpected cancel response: {response}")
        return bool(response.get("cancelled"))

    def metrics(self) -> str:
        """Prometheus text exposition of the daemon's metrics registry."""
        response = self.request({"op": "metrics"})
        if response.get("type") != "metrics":
            raise DaemonError(f"unexpected metrics response: {response}")
        return response.get("text", "")

    def dump(self) -> dict[str, Any]:
        """The daemon's full flight-recorder ring plus its summary fields."""
        response = self.request({"op": "dump"})
        if response.get("type") != "dump":
            raise DaemonError(f"unexpected dump response: {response}")
        return response

    def tail(self, count: int = 10) -> dict[str, Any]:
        """The newest ``count`` flight-recorder records (one response frame)."""
        response = self.request({"op": "tail", "count": count})
        if response.get("type") != "tail":
            raise DaemonError(f"unexpected tail response: {response}")
        return response

    def tail_follow(self, count: int = 10) -> Iterator[dict[str, Any]]:
        """Yield the newest ``count`` records, then each new one as it lands.

        The stream runs until the daemon goes away (``DaemonError``) or the
        caller stops consuming and closes the generator; ``keepalive``
        frames from the daemon are filtered out here.
        """
        try:
            with self._connect() as sock, sock.makefile("rwb") as stream:
                send_frame(
                    stream,
                    {"v": PROTOCOL_VERSION, "op": "tail", "count": count, "follow": True},
                )
                while True:
                    frame = recv_frame(stream)
                    if frame is None:
                        return
                    if frame.get("type") == "tail":
                        for record in frame.get("records", []):
                            yield record
                    elif frame.get("type") == "record":
                        yield frame["record"]
                    elif frame.get("type") == "error":
                        raise DaemonError(str(frame.get("message")))
        except OSError as error:
            raise DaemonError(f"daemon connection failed: {error}") from None

    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def status(self) -> dict[str, Any]:
        return self.request({"op": "status"})

    def shutdown(self) -> dict[str, Any]:
        return self.request({"op": "shutdown"})

    def is_running(self) -> bool:
        """Whether a live daemon answers a ping on the socket."""
        try:
            return self.ping().get("type") == "pong"
        except DaemonError:
            return False


def start_daemon(
    socket_path: str | Path | None = None,
    cache_dir: str | Path | None = None,
    workers: int = 2,
    wait_s: float = 30.0,
    trace: str | Path | None = None,
    max_inflight: int = 4,
    queue_depth: int = 16,
    recorder_capacity: int = 256,
    slow_request_s: float = 1.0,
) -> int:
    """Spawn a detached daemon process and wait until it answers pings.

    Returns the daemon pid.  Raises :class:`DaemonError` if one is already
    running on the socket or the child dies before binding (its log lives
    next to the socket as ``<socket>.log``).
    """
    path = Path(socket_path) if socket_path else default_socket_path()
    if DaemonClient(path).is_running():
        raise DaemonError(f"daemon already running on {path}")
    argv = [
        sys.executable,
        "-m",
        "repro.experiments",
        "daemon",
        "run",
        "--socket",
        str(path),
        "--workers",
        str(workers),
        "--max-inflight",
        str(max_inflight),
        "--queue-depth",
        str(queue_depth),
        "--recorder-capacity",
        str(recorder_capacity),
        "--slow-request-s",
        str(slow_request_s),
    ]
    if cache_dir is not None:
        argv += ["--cache-dir", str(cache_dir)]
    if trace is not None:
        argv += ["--trace", str(trace)]
    env = os.environ.copy()
    # Make the package importable in the child even when the parent runs off
    # a PYTHONPATH the service manager would not inherit.
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src_dir
    )
    log_path = path.with_name(path.name + ".log")
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(log_path, "ab") as log:
        process = subprocess.Popen(
            argv,
            stdin=subprocess.DEVNULL,
            stdout=log,
            stderr=log,
            start_new_session=True,
            env=env,
        )
    client = DaemonClient(path)
    deadline = time.time() + wait_s
    while time.time() < deadline:
        if process.poll() is not None:
            raise DaemonError(
                f"daemon exited with code {process.returncode} before binding "
                f"{path}; see {log_path}"
            )
        if client.is_running():
            return process.pid
        time.sleep(0.05)
    process.terminate()
    raise DaemonError(f"daemon did not bind {path} within {wait_s:g}s; see {log_path}")


def stop_daemon(
    socket_path: str | Path | None = None,
    wait_s: float = 10.0,
    *,
    force: bool = False,
) -> str | bool:
    """Stop the daemon on ``socket_path``; reports which path was taken.

    Returns ``"graceful"`` when the daemon acknowledged the shutdown op and
    exited within ``wait_s``, ``"forced"`` when the SIGKILL escalation was
    needed (only with ``force=True``), or ``False`` when no daemon runs
    there.  Without ``force``, a daemon that is still running after the
    graceful deadline -- wedged, or not even answering its socket while its
    published pid is alive -- raises :class:`DaemonError` telling the
    operator to retry with force.

    The forced path SIGKILLs the pid from ``<socket>.pid`` and cleans up the
    socket/pid files the daemon can no longer remove itself.
    """
    path = Path(socket_path) if socket_path else default_socket_path()
    # Short probe timeouts: a wedged daemon accepts into the kernel backlog
    # but never answers; the stop path must not hang on it.
    probe_timeout = max(0.1, min(wait_s, 5.0))
    client = DaemonClient(path, timeout=probe_timeout, connect_timeout=probe_timeout)
    acknowledged = False
    try:
        client.shutdown()
        acknowledged = True
    except DaemonError:
        pass
    if acknowledged:
        deadline = time.time() + wait_s
        while time.time() < deadline:
            if not client.is_running():
                return "graceful"
            time.sleep(0.05)
    pid = _read_pid_file(path)
    if not acknowledged and (pid is None or not _pid_alive(pid)):
        return False  # nothing answering and no live pid: no daemon runs
    state = (
        "acknowledged shutdown but is still running"
        if acknowledged
        else f"is not answering its socket (pid {pid} alive)"
    )
    if not force:
        raise DaemonError(
            f"daemon on {path} {state} after {wait_s:g}s; "
            f"escalate with force=True / --force to SIGKILL it"
        )
    if pid is None:
        raise DaemonError(
            f"cannot force-stop the daemon on {path}: no pid file "
            f"({_pid_file(path)}) to SIGKILL"
        )
    try:
        os.kill(pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    deadline = time.time() + max(wait_s, 1.0)
    while _pid_alive(pid) and time.time() < deadline:
        try:
            os.waitpid(pid, os.WNOHANG)  # reap the zombie if it is our child
        except (ChildProcessError, OSError):
            pass
        time.sleep(0.05)
    if _pid_alive(pid):
        raise DaemonError(f"daemon pid {pid} survived SIGKILL (zombie reaping lag?)")
    for leftover in (path, _pid_file(path), _lock_file(path)):
        try:
            leftover.unlink()
        except OSError:
            pass
    return "forced"
