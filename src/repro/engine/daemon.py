"""Warm execution daemon: a unix-domain-socket server over the engine.

Every cold CLI invocation pays process-pool spin-up and a disk read per
cache lookup.  The daemon amortises both across invocations: it owns a
long-lived ``ProcessPoolExecutor`` (workers stay forked and warm) and
layers an in-memory decoded-result index over the on-disk
:class:`ResultCache` so a warm request never re-stats or re-reads a blob.
The daemon hashes the source fingerprint once at start; clients send their
own fingerprint with every submit and are refused (``stale`` frame) when
the sources have changed since, so a long-lived daemon can never silently
serve results computed by old code.

Protocol -- length-prefixed NDJSON over ``AF_UNIX``.  Each frame is one JSON
object serialized to a single line, preceded by its byte length on its own
line (so consumers can pre-allocate and corrupt streams fail loudly)::

    22\n
    {"op":"status","v":1}\n

Requests (client -> daemon): ``submit`` (experiment ids + quick/shard_size;
the daemon answers with one ``event`` frame per
:class:`~repro.engine.executor.JobEvent` as shards land, then a ``done``
frame carrying per-request cache stats), ``fleet`` (one fleet traffic job
config; same event stream, done frame additionally carries this request's
auth-latency histogram), ``metrics`` (Prometheus text exposition of the
daemon's telemetry registry), ``status``, ``ping``, and ``shutdown``.
Error responses are ``{"type": "error", "message": ...}``.

The daemon always runs with telemetry collection enabled: work requests
(``submit``/``fleet``) are timed into the ``daemon_request_seconds``
histogram and classified warm (every terminal outcome served from cache)
vs cold, and ``status`` embeds a full metrics snapshot.

The CLI degrades gracefully: when no daemon is listening on the socket
(``$REPRO_DAEMON_SOCKET`` or the per-user default), execution happens
inline in the invoking process, bit-identically.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import subprocess
import sys
import tempfile
import threading
import time
import traceback
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, BinaryIO, Iterator

from repro import telemetry
from repro.engine.cache import ResultCache, default_cache_dir
from repro.engine.jobs import ExperimentJob
from repro.engine.sharding import iter_sharded

#: Environment override for the daemon socket location.
SOCKET_ENV = "REPRO_DAEMON_SOCKET"

#: Protocol version stamped on every request/response frame.
PROTOCOL_VERSION = 1

#: Frames larger than this are rejected (corrupt length headers fail fast).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class DaemonError(RuntimeError):
    """Daemon unreachable, already running, or a protocol violation."""


def default_socket_path() -> Path:
    """Socket path from ``$REPRO_DAEMON_SOCKET``, else a private per-user dir.

    Without the override, the socket lives inside a directory only the
    current user can enter (``$XDG_RUNTIME_DIR`` when set, else a ``0700``
    per-user directory under the temp dir) -- a predictable socket directly
    in world-writable ``/tmp`` could be squatted by another local user, who
    could then spoof experiment results to auto-routing clients.  Raises
    :class:`DaemonError` if the directory exists but is not exclusively
    ours.
    """
    env = os.environ.get(SOCKET_ENV)
    if env:
        return Path(env)
    runtime = os.environ.get("XDG_RUNTIME_DIR")
    if runtime:
        return Path(runtime) / "repro-daemon.sock"
    if not hasattr(os, "getuid"):  # pragma: no cover - daemon needs AF_UNIX anyway
        return Path(tempfile.gettempdir()) / "repro-daemon.sock"
    directory = Path(tempfile.gettempdir()) / f"repro-daemon-{os.getuid()}"
    try:
        directory.mkdir(mode=0o700, exist_ok=True)
        stat = directory.stat()
    except OSError as error:
        raise DaemonError(f"cannot secure daemon directory {directory}: {error}") from None
    if stat.st_uid != os.getuid() or stat.st_mode & 0o077:
        raise DaemonError(
            f"daemon directory {directory} is not exclusively owned by this "
            f"user (uid {stat.st_uid}, mode {stat.st_mode & 0o777:o}); refusing "
            f"to trust it -- set ${SOCKET_ENV} to a private path instead"
        )
    return directory / "daemon.sock"


def send_frame(wfile: BinaryIO, message: dict[str, Any]) -> None:
    """Write one length-prefixed NDJSON frame."""
    data = json.dumps(message, separators=(",", ":")).encode() + b"\n"
    wfile.write(f"{len(data)}\n".encode() + data)
    wfile.flush()


def recv_frame(rfile: BinaryIO) -> dict[str, Any] | None:
    """Read one frame; ``None`` on a clean EOF, :class:`DaemonError` on junk."""
    header = rfile.readline()
    if not header:
        return None
    try:
        length = int(header)
    except ValueError:
        raise DaemonError(f"bad frame length header: {header!r}") from None
    if not 0 < length <= MAX_FRAME_BYTES:
        raise DaemonError(f"frame length {length} out of range")
    data = rfile.read(length)
    if len(data) < length:
        raise DaemonError("truncated frame")
    try:
        message = json.loads(data)
    except ValueError as error:
        raise DaemonError(f"frame is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise DaemonError("frame must be a JSON object")
    return message


class MemoryIndexCache:
    """Write-through in-memory LRU index over an on-disk :class:`ResultCache`.

    Duck-types the cache surface the engine uses (``get``/``put``/``stats``)
    while keeping decoded result values in process memory keyed by their
    content address, so a warm lookup touches no file and re-runs no
    fingerprint -- the disk store stays the durable source of truth and is
    still written through on every ``put``.  The index holds at most
    ``max_entries`` values (least-recently-used evicted first), so a
    long-lived daemon's memory stays bounded even as the disk store churns.
    """

    def __init__(self, disk: ResultCache, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.disk = disk
        self.max_entries = max_entries
        self._index: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.memory_hits = 0
        self.disk_hits = 0

    @property
    def stats(self):
        return self.disk.stats

    def __len__(self) -> int:
        return len(self._index)

    def get(self, job) -> Any | None:
        key = self.disk.key_for(job)
        with self._lock:
            if key in self._index:
                self.memory_hits += 1
                self.stats.hits += 1
                self._index.move_to_end(key)
                return self._index[key]
        value = self.disk.get(job)
        if value is not None:
            with self._lock:
                self.disk_hits += 1
                self._store(key, value)
        return value

    def put(self, job, value) -> None:
        self.disk.put(job, value)
        with self._lock:
            self._store(self.disk.key_for(job), value)

    def _store(self, key: str, value) -> None:
        """Insert under the lock, evicting the LRU tail past ``max_entries``."""
        self._index[key] = value
        self._index.move_to_end(key)
        while len(self._index) > self.max_entries:
            self._index.popitem(last=False)


def _warm_worker(index: int) -> int:
    """No-op task submitted at startup so pool workers fork ahead of time."""
    return index


class _Handler(socketserver.StreamRequestHandler):
    """One connection: a single request frame, then a response stream."""

    def handle(self) -> None:  # pragma: no cover - exercised via the client
        daemon: ExperimentDaemon = self.server.daemon  # type: ignore[attr-defined]
        try:
            request = recv_frame(self.rfile)
        except DaemonError as error:
            self._send({"type": "error", "message": str(error)})
            return
        if request is None:
            return
        daemon.count_request()
        op = request.get("op")
        try:
            if op == "ping":
                self._send({"type": "pong", "v": PROTOCOL_VERSION, "pid": os.getpid()})
            elif op == "status":
                self._send({"type": "status", **daemon.status()})
            elif op == "metrics":
                self._send(
                    {
                        "type": "metrics",
                        "text": telemetry.registry().render_prometheus(),
                    }
                )
            elif op in ("submit", "fleet"):
                self._handle_work(daemon, request, op)
            elif op == "shutdown":
                self._send({"type": "ok", "pid": os.getpid()})
                daemon.request_shutdown()
            else:
                self._send({"type": "error", "message": f"unknown op {op!r}"})
        except BrokenPipeError:
            pass  # client went away mid-stream; nothing to clean up here
        except Exception:
            self._send({"type": "error", "message": traceback.format_exc()})

    def _handle_work(
        self, daemon: "ExperimentDaemon", request: dict[str, Any], op: str
    ) -> None:
        """Run one work request under a span with warm/cold classification.

        A request is *warm* when every terminal outcome was served from
        cache (the pool never ran -- the handler's done payload reports zero
        misses); refused requests (bad arguments, stale code version) count
        as neither.  The handlers return the ``done`` frame instead of
        sending it so every metric is updated *before* the client sees the
        request complete -- a ``status`` issued right after ``done`` must
        already include this request.
        """
        reg = telemetry.registry()
        reg.counter(telemetry.DAEMON_REQUESTS).inc()
        start = time.perf_counter()
        with telemetry.span("daemon.request", kind="daemon", op=op):
            if op == "submit":
                done = self._handle_submit(daemon, request)
            else:
                done = self._handle_fleet(daemon, request)
        reg.histogram(telemetry.DAEMON_REQUEST_SECONDS).observe(
            time.perf_counter() - start
        )
        if done is not None:
            reg.counter(
                telemetry.DAEMON_REQUESTS_WARM
                if done["misses"] == 0
                else telemetry.DAEMON_REQUESTS_COLD
            ).inc()
            self._send(done)

    def _send(self, message: dict[str, Any]) -> None:
        try:
            send_frame(self.wfile, message)
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass

    def _check_shard_size(self, request: dict[str, Any]) -> bool:
        shard_size = request.get("shard_size")
        if shard_size is not None and (not isinstance(shard_size, int) or shard_size <= 0):
            self._send({"type": "error", "message": "shard_size must be a positive int"})
            return False
        return True

    def _check_code_version(
        self, daemon: "ExperimentDaemon", request: dict[str, Any]
    ) -> bool:
        # A client built from edited sources must not be served results (or
        # computations) from the daemon's stale code: refuse so the caller
        # can fall back inline and the operator can restart the daemon.
        code_version = request.get("code_version")
        daemon_version = daemon.cache.disk.code_version
        if code_version is not None and code_version != daemon_version:
            self._send(
                {
                    "type": "stale",
                    "message": "daemon runs a different source fingerprint "
                    "(package sources changed since daemon start); restart it "
                    "with: daemon stop && daemon start",
                    "daemon_code_version": daemon_version,
                }
            )
            return False
        return True

    def _handle_submit(
        self, daemon: "ExperimentDaemon", request: dict[str, Any]
    ) -> dict[str, Any] | None:
        """Stream one submit request's events; returns the unsent done frame
        (``None`` when the request was refused and an error/stale frame
        already went out)."""
        from repro.experiments.registry import EXPERIMENTS

        experiments = request.get("experiments") or []
        unknown = [eid for eid in experiments if eid not in EXPERIMENTS]
        if not experiments or unknown:
            self._send(
                {
                    "type": "error",
                    "message": f"unknown experiment(s): {', '.join(unknown)}"
                    if unknown
                    else "submit requires a non-empty experiments list",
                }
            )
            return None
        quick = bool(request.get("quick", True))
        if not self._check_shard_size(request):
            return None
        if not self._check_code_version(daemon, request):
            return None
        jobs = [ExperimentJob(eid, quick=quick) for eid in experiments]
        roots = {id(job) for job in jobs}
        memory0 = daemon.cache.memory_hits
        served = computed = 0
        for event in iter_sharded(
            jobs,
            shard_size=request.get("shard_size"),
            workers=daemon.workers,
            cache=daemon.cache,
            fail_fast=bool(request.get("fail_fast", True)),
            ordered=bool(request.get("ordered", False)),
            pool=daemon.pool,
        ):
            if event.terminal:
                daemon.count_job()
                if event.outcome is not None and event.outcome.cached:
                    served += 1
                else:
                    computed += 1
            include_value = (
                event.terminal
                and id(event.job) in roots
                and event.outcome is not None
                and event.outcome.ok
            )
            self._send(
                {"type": "event", "event": event.to_dict(include_value=include_value)}
            )
        # hits/misses are derived from this request's own events (exact even
        # under concurrent submits); memory_hits is a global-counter delta and
        # therefore only attributable when requests do not overlap.
        return {
            "type": "done",
            "hits": served,
            "misses": computed,
            "memory_hits": daemon.cache.memory_hits - memory0,
        }

    def _handle_fleet(
        self, daemon: "ExperimentDaemon", request: dict[str, Any]
    ) -> dict[str, Any] | None:
        """Run one fleet traffic job, streaming events; returns the unsent
        ``done`` frame (``None`` on refusal).

        The done frame carries this request's per-auth latency histogram --
        the delta of the daemon registry's ``fleet_auth_request_seconds``
        across the run (exact bucket arithmetic; like ``memory_hits`` it is
        only attributable to one request while requests do not overlap).  A
        warm (fully cached) request computes nothing, so its latency
        histogram is empty.
        """
        from repro.engine.jobs import FleetTrafficJob

        config = request.get("job")
        if not isinstance(config, dict):
            self._send({"type": "error", "message": "fleet requires a job config object"})
            return None
        if not self._check_shard_size(request):
            return None
        if not self._check_code_version(daemon, request):
            return None
        try:
            job = FleetTrafficJob(**config)
        except (TypeError, ValueError) as error:
            self._send({"type": "error", "message": f"bad fleet job config: {error}"})
            return None
        reg = telemetry.registry()
        auth_latency = reg.histogram(telemetry.FLEET_AUTH_SECONDS)
        before = telemetry.Histogram.from_dict(auth_latency.to_dict())
        start = time.perf_counter()
        served = computed = 0
        for event in iter_sharded(
            [job],
            shard_size=request.get("shard_size"),
            workers=daemon.workers,
            cache=daemon.cache,
            fail_fast=True,
            pool=daemon.pool,
        ):
            if event.terminal:
                daemon.count_job()
                if event.outcome is not None and event.outcome.cached:
                    served += 1
                else:
                    computed += 1
            include_value = (
                event.terminal
                and event.job is job
                and event.outcome is not None
                and event.outcome.ok
            )
            self._send(
                {"type": "event", "event": event.to_dict(include_value=include_value)}
            )
        return {
            "type": "done",
            "hits": served,
            "misses": computed,
            "elapsed_s": round(time.perf_counter() - start, 6),
            "latency": auth_latency.subtract(before).to_dict(),
        }


if hasattr(socketserver, "ThreadingUnixStreamServer"):

    class _Server(socketserver.ThreadingUnixStreamServer):
        daemon_threads = True

else:  # pragma: no cover - platforms without AF_UNIX: daemon mode unavailable
    _Server = None


class ExperimentDaemon:
    """Long-lived experiment server bound to one unix socket.

    Owns the process pool and the memory-indexed cache; every connection is
    handled on its own thread, all sharing the pool (each request waits only
    on its own futures, so concurrent submits interleave safely).
    """

    def __init__(
        self,
        socket_path: str | Path | None = None,
        cache_dir: str | Path | None = None,
        workers: int = 2,
        trace: str | Path | None = None,
    ):
        self.socket_path = Path(socket_path) if socket_path else default_socket_path()
        self.cache = MemoryIndexCache(
            ResultCache(Path(cache_dir) if cache_dir else default_cache_dir())
        )
        self.workers = max(1, int(workers))
        self.pool = ProcessPoolExecutor(max_workers=self.workers)
        self.started_at = time.time()
        self.requests = 0
        self.jobs_completed = 0
        self._counters_lock = threading.Lock()
        self._server: _Server | None = None
        # A service measures itself: collection is always on in the daemon
        # (the cost is a few counter bumps per request, and status/metrics
        # frames are only meaningful with data behind them).
        telemetry.enable_collection()
        self.trace_path = Path(trace) if trace else None
        if self.trace_path is not None:
            telemetry.enable_tracing(telemetry.TraceWriter(self.trace_path))

    def count_request(self) -> None:
        with self._counters_lock:
            self.requests += 1

    def count_job(self) -> None:
        with self._counters_lock:
            self.jobs_completed += 1

    def status(self) -> dict[str, Any]:
        return {
            "v": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "socket": str(self.socket_path),
            "cache_dir": str(self.cache.disk.cache_dir),
            "workers": self.workers,
            "uptime_s": round(time.time() - self.started_at, 3),
            "requests": self.requests,
            "jobs_completed": self.jobs_completed,
            "index_entries": len(self.cache),
            "memory_hits": self.cache.memory_hits,
            "disk_hits": self.cache.disk_hits,
            "disk_misses": self.cache.stats.misses,
            "metrics": telemetry.registry().snapshot(),
        }

    def request_shutdown(self) -> None:
        """Stop the accept loop (callable from a handler thread)."""
        server = self._server
        if server is not None:
            threading.Thread(target=server.shutdown, daemon=True).start()

    def serve_forever(self) -> None:
        """Bind the socket and serve until :meth:`request_shutdown`.

        A stale socket file from a crashed daemon is reclaimed; a live one
        raises :class:`DaemonError` instead of hijacking it.
        """
        if _Server is None:
            raise DaemonError("daemon mode requires AF_UNIX socket support")
        if self.socket_path.exists():
            if DaemonClient(self.socket_path).is_running():
                raise DaemonError(f"daemon already running on {self.socket_path}")
            self.socket_path.unlink()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        # Fork the workers and import the experiment drivers now, so even the
        # first request is served warm (the source fingerprint was already
        # hashed when the cache was constructed).
        for _ in self.pool.map(_warm_worker, range(self.workers)):
            pass
        from repro.experiments import registry  # noqa: F401 - pre-import drivers

        self._server = _Server(str(self.socket_path), _Handler)
        self._server.daemon = self  # type: ignore[attr-defined]
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self._server.server_close()
            self._server = None
            try:
                self.socket_path.unlink()
            except OSError:
                pass
            self.pool.shutdown(wait=False, cancel_futures=True)


class DaemonClient:
    """Client side of the daemon protocol."""

    def __init__(self, socket_path: str | Path | None = None, timeout: float = 300.0):
        self.socket_path = Path(socket_path) if socket_path else default_socket_path()
        self.timeout = timeout

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(str(self.socket_path))
        except OSError as error:
            sock.close()
            raise DaemonError(
                f"no daemon listening on {self.socket_path}: {error}"
            ) from None
        return sock

    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """One-shot request returning the single response frame."""
        try:
            with self._connect() as sock, sock.makefile("rwb") as stream:
                send_frame(stream, {"v": PROTOCOL_VERSION, **message})
                response = recv_frame(stream)
        except OSError as error:
            # e.g. the daemon tore the connection down mid-exchange (shutdown)
            raise DaemonError(f"daemon connection failed: {error}") from None
        if response is None:
            raise DaemonError("daemon closed the connection without responding")
        return response

    def submit(
        self,
        experiments: list[str],
        *,
        quick: bool = True,
        shard_size: int | None = None,
        ordered: bool = False,
        fail_fast: bool = True,
        code_version: str | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Submit experiments; yield ``event`` frames then the ``done`` frame.

        Pass the client's :func:`~repro.engine.cache.source_fingerprint` as
        ``code_version`` to be refused (a single ``stale`` frame) when the
        daemon was started from different package sources -- a stale daemon
        must not silently serve results keyed under old code.
        """
        try:
            with self._connect() as sock, sock.makefile("rwb") as stream:
                send_frame(
                    stream,
                    {
                        "v": PROTOCOL_VERSION,
                        "op": "submit",
                        "experiments": list(experiments),
                        "quick": quick,
                        "shard_size": shard_size,
                        "ordered": ordered,
                        "fail_fast": fail_fast,
                        "code_version": code_version,
                    },
                )
                while True:
                    frame = recv_frame(stream)
                    if frame is None:
                        raise DaemonError("daemon stream ended before the done frame")
                    yield frame
                    if frame.get("type") in ("done", "error", "stale"):
                        return
        except OSError as error:
            raise DaemonError(f"daemon connection failed: {error}") from None

    def fleet(
        self,
        job_config: dict[str, Any],
        *,
        shard_size: int | None = None,
        code_version: str | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Submit one fleet traffic job config; yield ``event`` frames then
        the ``done`` frame (which carries the request's auth-latency
        histogram).  Staleness semantics match :meth:`submit`.
        """
        try:
            with self._connect() as sock, sock.makefile("rwb") as stream:
                send_frame(
                    stream,
                    {
                        "v": PROTOCOL_VERSION,
                        "op": "fleet",
                        "job": dict(job_config),
                        "shard_size": shard_size,
                        "code_version": code_version,
                    },
                )
                while True:
                    frame = recv_frame(stream)
                    if frame is None:
                        raise DaemonError("daemon stream ended before the done frame")
                    yield frame
                    if frame.get("type") in ("done", "error", "stale"):
                        return
        except OSError as error:
            raise DaemonError(f"daemon connection failed: {error}") from None

    def metrics(self) -> str:
        """Prometheus text exposition of the daemon's metrics registry."""
        response = self.request({"op": "metrics"})
        if response.get("type") != "metrics":
            raise DaemonError(f"unexpected metrics response: {response}")
        return response.get("text", "")

    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def status(self) -> dict[str, Any]:
        return self.request({"op": "status"})

    def shutdown(self) -> dict[str, Any]:
        return self.request({"op": "shutdown"})

    def is_running(self) -> bool:
        """Whether a live daemon answers a ping on the socket."""
        try:
            return self.ping().get("type") == "pong"
        except DaemonError:
            return False


def start_daemon(
    socket_path: str | Path | None = None,
    cache_dir: str | Path | None = None,
    workers: int = 2,
    wait_s: float = 30.0,
    trace: str | Path | None = None,
) -> int:
    """Spawn a detached daemon process and wait until it answers pings.

    Returns the daemon pid.  Raises :class:`DaemonError` if one is already
    running on the socket or the child dies before binding (its log lives
    next to the socket as ``<socket>.log``).
    """
    path = Path(socket_path) if socket_path else default_socket_path()
    if DaemonClient(path).is_running():
        raise DaemonError(f"daemon already running on {path}")
    argv = [
        sys.executable,
        "-m",
        "repro.experiments",
        "daemon",
        "run",
        "--socket",
        str(path),
        "--workers",
        str(workers),
    ]
    if cache_dir is not None:
        argv += ["--cache-dir", str(cache_dir)]
    if trace is not None:
        argv += ["--trace", str(trace)]
    env = os.environ.copy()
    # Make the package importable in the child even when the parent runs off
    # a PYTHONPATH the service manager would not inherit.
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src_dir
    )
    log_path = path.with_name(path.name + ".log")
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(log_path, "ab") as log:
        process = subprocess.Popen(
            argv,
            stdin=subprocess.DEVNULL,
            stdout=log,
            stderr=log,
            start_new_session=True,
            env=env,
        )
    client = DaemonClient(path)
    deadline = time.time() + wait_s
    while time.time() < deadline:
        if process.poll() is not None:
            raise DaemonError(
                f"daemon exited with code {process.returncode} before binding "
                f"{path}; see {log_path}"
            )
        if client.is_running():
            return process.pid
        time.sleep(0.05)
    process.terminate()
    raise DaemonError(f"daemon did not bind {path} within {wait_s:g}s; see {log_path}")


def stop_daemon(socket_path: str | Path | None = None, wait_s: float = 10.0) -> bool:
    """Ask the daemon on ``socket_path`` to shut down; ``False`` if none runs.

    Raises :class:`DaemonError` if the daemon acknowledged the shutdown but
    is still answering pings after ``wait_s`` -- a wedged daemon must not be
    reported as stopped.
    """
    path = Path(socket_path) if socket_path else default_socket_path()
    client = DaemonClient(path)
    try:
        client.shutdown()
    except DaemonError:
        return False
    deadline = time.time() + wait_s
    while time.time() < deadline:
        if not client.is_running():
            return True
        time.sleep(0.05)
    raise DaemonError(
        f"daemon on {path} acknowledged shutdown but is still running "
        f"after {wait_s:g}s"
    )
