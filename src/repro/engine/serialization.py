"""Lossless JSON serialization for engine jobs and their results.

The cache stores every job result as a JSON blob, and cache keys are SHA-256
digests of a *canonical* JSON encoding of the job configuration, so both
directions must be deterministic:

* :func:`to_jsonable` normalizes NumPy scalars/arrays and dataclass-free
  containers into plain Python values that ``json`` can encode;
* :func:`canonical_json` produces a byte-stable compact encoding (sorted
  keys, no whitespace) suitable for hashing;
* :func:`result_to_json` / :func:`result_from_json` round-trip an
  :class:`~repro.experiments.base.ExperimentResult` losslessly (NumPy cells
  come back as the native values they compare equal to).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.base import ExperimentResult


def to_jsonable(value: Any) -> Any:
    """Recursively coerce ``value`` into JSON-representable Python objects."""
    if value is None or isinstance(value, (str, bool, int, float)):
        return value
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    tolist = getattr(value, "tolist", None)
    if callable(tolist):  # numpy array
        return to_jsonable(tolist())
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        return item()
    raise TypeError(f"{value!r} of type {type(value).__name__} is not JSON-serializable")


def canonical_json(value: Any) -> str:
    """Byte-stable compact JSON encoding, used for content addressing."""
    return json.dumps(to_jsonable(value), sort_keys=True, separators=(",", ":"))


def result_to_json(result: "ExperimentResult", indent: int | None = 2) -> str:
    """Serialize one experiment result to a JSON document."""
    return json.dumps(result.to_dict(), indent=indent)


def result_from_json(text: str) -> "ExperimentResult":
    """Inverse of :func:`result_to_json`."""
    from repro.experiments.base import ExperimentResult

    return ExperimentResult.from_dict(json.loads(text))
