"""Job abstractions executed by the engine.

A job is a frozen, picklable description of one unit of work with a fully
deterministic configuration: the same job run on any worker process produces
the same result.  The job kinds covering the repository today:

* :class:`ExperimentJob` wraps one registry driver (``table2``, ``fig7``, ...)
  in quick or paper-scale mode;
* :class:`MonteCarloPointJob` wraps a single (variation, temperature) Monte
  Carlo sweep point so that the Table 11 style sweeps can fan out per point;
* :class:`MonteCarloShardJob` is a contiguous sample range of one such point;
* :class:`PUFPairsJob` / :class:`PUFPairsShardJob` are a batch (or a
  contiguous pair range of a batch) of Jaccard pairs for one Figure 5/6 cell
  or the aging study;
* :class:`FleetTrafficJob` / :class:`FleetTrafficShardJob` replay a stream
  (or a contiguous request range of a stream) of fleet authentication
  traffic (:mod:`repro.fleet`);
* :class:`FleetEnrollJob` / :class:`FleetEnrollShardJob` enroll a fleet (or
  a contiguous device range of one) into the verifier's golden store.

Jobs whose work splits into independent units additionally implement the
:class:`ShardedJob` protocol (``shard_jobs`` -> run each shard -> ``merge``),
which :func:`repro.engine.sharding.run_sharded` uses to schedule the shards
of many jobs on one process pool and cache them individually.  Because every
unit (Monte Carlo sample, Jaccard pair) owns an index-derived RNG stream,
merged shard results are bit-identical to a serial ``run()`` for every shard
size and worker count.

Each job also knows how to ``encode``/``decode`` its result to/from a
JSON-safe dict, which is what the content-addressed cache persists.

Cross-package imports happen lazily inside methods: the experiment registry
imports this module at call time and vice versa, and jobs must stay cheap to
unpickle inside ``ProcessPoolExecutor`` workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any


class Job:
    """Abstract unit of work; subclasses are frozen dataclasses."""

    #: Stable discriminator used in cache keys and decoded payloads.
    kind: str = "job"

    @property
    def job_id(self) -> str:
        """Human-readable identifier used in progress lines and stats."""
        raise NotImplementedError

    @property
    def config(self) -> dict[str, Any]:
        """Deterministic JSON-safe configuration; part of the cache key."""
        raise NotImplementedError

    def run(self) -> Any:
        """Execute the job and return its result object."""
        raise NotImplementedError

    def encode(self, result: Any) -> dict[str, Any]:
        """Convert a result object to a JSON-safe dict for the cache."""
        raise NotImplementedError

    def decode(self, payload: dict[str, Any]) -> Any:
        """Inverse of :meth:`encode`."""
        raise NotImplementedError

    def shard_range(self) -> tuple[int, int] | None:
        """``(start, stop)`` unit coordinates for shard jobs, else ``None``.

        Event streams (:class:`repro.engine.executor.JobEvent`) surface this
        so ``--stream`` consumers can locate a shard without parsing job ids.
        """
        return None


class ShardedJob(Job):
    """A job whose work splits into independently runnable sub-jobs.

    Contract: for any ``shard_size``, ``merge([sub.run() for sub in
    shard_jobs(shard_size)])`` is bit-identical to ``run()``.  Sub-jobs may
    themselves be sharded (e.g. an experiment splits into sweep points, each
    point into sample ranges); :func:`repro.engine.sharding.run_sharded`
    expands recursively.  Sharding is purely an execution concern
    (parallelism plus per-shard caching), never a semantic one: shard
    boundaries must not influence the merged value.
    """

    def shard_jobs(self, shard_size: int) -> "list[Job] | None":
        """Sub-jobs of at most ``shard_size`` units, or ``None`` to run whole."""
        raise NotImplementedError

    def merge(self, values: list[Any]) -> Any:
        """Combine sub-job results (in shard order) into this job's result."""
        raise NotImplementedError


def shard_ranges(total: int, shard_size: int) -> list[tuple[int, int]]:
    """``[start, stop)`` ranges of at most ``shard_size`` covering ``total``.

    Boundaries are aligned to multiples of ``shard_size``, so growing
    ``total`` (e.g. re-running a sweep with more samples) leaves every
    previously computed shard job identical -- only the tail is new work.

    >>> shard_ranges(10, 4)
    [(0, 4), (4, 8), (8, 10)]
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    return [
        (start, min(start + shard_size, total))
        for start in range(0, total, shard_size)
    ]


@dataclass(frozen=True)
class ExperimentJob(ShardedJob):
    """One registry experiment (a paper table or figure) in one mode.

    Experiments with a shard plan (Table 11, Figures 5/6, aging) split into
    their unit jobs -- sweep points or pair batches -- which shard further.
    """

    experiment_id: str
    quick: bool = True

    kind = "experiment"

    @property
    def job_id(self) -> str:
        return self.experiment_id

    @property
    def config(self) -> dict[str, Any]:
        return {"experiment_id": self.experiment_id, "quick": self.quick}

    def run(self) -> Any:
        from repro.experiments.registry import EXPERIMENTS

        try:
            driver = EXPERIMENTS[self.experiment_id]
        except KeyError:
            raise KeyError(
                f"unknown experiment {self.experiment_id!r}; known experiments: "
                f"{sorted(EXPERIMENTS)}"
            ) from None
        return driver(self.quick)

    def shard_jobs(self, shard_size: int) -> list[Job] | None:
        from repro.experiments.sharding import plan_for

        plan = plan_for(self.experiment_id)
        if plan is None:
            return None
        return list(plan.unit_jobs(self.quick))

    def merge(self, values: list[Any]) -> Any:
        from repro.experiments.sharding import plan_for

        return plan_for(self.experiment_id).assemble(self.quick, values)

    def encode(self, result: Any) -> dict[str, Any]:
        return result.to_dict()

    def decode(self, payload: dict[str, Any]) -> Any:
        from repro.experiments.base import ExperimentResult

        return ExperimentResult.from_dict(payload)


@dataclass(frozen=True)
class MonteCarloPointJob(ShardedJob):
    """One (variation, temperature) point of a Monte Carlo sweep."""

    variation_percent: float
    temperature_c: float
    samples: int = 100_000
    seed: int = 12345

    kind = "montecarlo-point"

    @property
    def job_id(self) -> str:
        return f"mc[{self.variation_percent:g}%,{self.temperature_c:g}C]"

    @property
    def config(self) -> dict[str, Any]:
        return {
            "variation_percent": self.variation_percent,
            "temperature_c": self.temperature_c,
            "samples": self.samples,
            "seed": self.seed,
        }

    def run(self) -> Any:
        from repro.circuit.montecarlo import MonteCarloEngine

        engine = MonteCarloEngine(seed=self.seed, samples=self.samples)
        return engine.run_point(self.variation_percent, self.temperature_c)

    def shard_jobs(self, shard_size: int) -> list[Job] | None:
        from repro.circuit.montecarlo import MC_SAMPLE_BLOCK

        # Align shards to the canonical RNG blocks: a boundary inside a block
        # would make both neighbouring shards draw that whole block.  Safe for
        # bit-identity (per-sample values are index-addressed) and for cache
        # reuse (alignment depends only on shard_size).
        aligned = max(shard_size // MC_SAMPLE_BLOCK, 1) * MC_SAMPLE_BLOCK
        if aligned >= self.samples:
            return None
        return [
            MonteCarloShardJob(
                variation_percent=self.variation_percent,
                temperature_c=self.temperature_c,
                start=start,
                stop=stop,
                seed=self.seed,
            )
            for start, stop in shard_ranges(self.samples, aligned)
        ]

    def merge(self, values: list[Any]) -> Any:
        from repro.circuit.montecarlo import MonteCarloResult

        return MonteCarloResult(
            variation_percent=self.variation_percent,
            temperature_c=self.temperature_c,
            samples=self.samples,
            bit_flips=sum(int(value) for value in values),
        )

    def encode(self, result: Any) -> dict[str, Any]:
        return {
            "variation_percent": result.variation_percent,
            "temperature_c": result.temperature_c,
            "samples": result.samples,
            "bit_flips": result.bit_flips,
        }

    def decode(self, payload: dict[str, Any]) -> Any:
        from repro.circuit.montecarlo import MonteCarloResult

        return MonteCarloResult(**payload)


@dataclass(frozen=True)
class MonteCarloShardJob(Job):
    """Samples ``[start, stop)`` of one Monte Carlo sweep point.

    The config deliberately excludes the point's total sample count: the
    canonical block streams make a shard's flip count a function of its range
    alone, so re-running a sweep with more samples re-uses every previously
    cached shard and only computes the new tail.
    """

    variation_percent: float
    temperature_c: float
    start: int
    stop: int
    seed: int = 12345

    kind = "montecarlo-shard"

    @property
    def job_id(self) -> str:
        return (
            f"mc[{self.variation_percent:g}%,{self.temperature_c:g}C]"
            f"[{self.start}:{self.stop}]"
        )

    @property
    def config(self) -> dict[str, Any]:
        return {
            "variation_percent": self.variation_percent,
            "temperature_c": self.temperature_c,
            "start": self.start,
            "stop": self.stop,
            "seed": self.seed,
        }

    def run(self) -> Any:
        from repro.circuit.montecarlo import MonteCarloEngine

        engine = MonteCarloEngine(seed=self.seed)
        return engine.shard_flips(
            self.variation_percent, self.temperature_c, self.start, self.stop
        )

    def shard_range(self) -> tuple[int, int]:
        return (self.start, self.stop)

    def encode(self, result: Any) -> dict[str, Any]:
        return {"bit_flips": int(result)}

    def decode(self, payload: dict[str, Any]) -> Any:
        return int(payload["bit_flips"])


@lru_cache(maxsize=1)
def _paper_population():
    """Per-process memo of the paper's module population.

    PUF evaluation only reads seed-derived responses (it never writes rows),
    so sharing one population across every pair job in a worker process is
    safe and avoids rebuilding 136 chips per shard.
    """
    from repro.dram.population import paper_population

    return paper_population()


def _run_puf_pairs(spec: "PUFPairsJob", start: int, stop: int) -> dict[str, list[float]]:
    """Evaluate pairs ``[start, stop)`` of one PUF pair batch."""
    from repro.experiments.puf_experiments import PUF_FACTORIES
    from repro.puf.evaluation import PUFEvaluator

    population = _paper_population()
    if spec.voltage == "all":
        modules = population.modules
    elif spec.voltage in ("ddr3", "ddr3l"):
        modules = population.modules_by_voltage(spec.voltage == "ddr3l")
    else:
        raise ValueError(
            f"unknown voltage class {spec.voltage!r}; expected all/ddr3/ddr3l"
        )
    try:
        factory = PUF_FACTORIES[spec.puf]
    except KeyError:
        raise KeyError(
            f"unknown PUF {spec.puf!r}; known PUFs: {sorted(PUF_FACTORIES)}"
        ) from None
    evaluator = PUFEvaluator(
        modules,
        factory,
        pairs=spec.pairs,  # the batch total, so range checks stay meaningful
        segment_bytes=spec.segment_bytes,
        seed=spec.seed,
    )
    # The *_shard methods route through the batched pair kernels
    # (quality_pairs_batch and friends); .values converts the float64 result
    # arrays to the JSON-safe lists the cache persists, with floats identical
    # to the scalar kernel loop.
    if spec.mode == "quality":
        intra, inter = evaluator.quality_shard(
            start, stop, temperature_c=spec.base_temperature_c
        )
        return {"intra": intra.values, "inter": inter.values}
    if spec.mode == "temperature":
        distribution = evaluator.temperature_shard(
            spec.temperature_delta_c, start, stop,
            base_temperature_c=spec.base_temperature_c,
        )
        return {"intra": distribution.values}
    if spec.mode == "aging":
        distribution = evaluator.aging_shard(
            start, stop, aging_hours=spec.aging_hours
        )
        return {"intra": distribution.values}
    raise ValueError(
        f"unknown mode {spec.mode!r}; expected quality/temperature/aging"
    )


def _decode_pair_values(payload: dict[str, Any]) -> dict[str, list[float]]:
    return {key: [float(value) for value in values] for key, values in payload.items()}


def _merge_keyed_lists(values: "list[Any]") -> dict[str, list[Any]]:
    """Merge shard result dicts by concatenating each key's list, in order."""
    merged: dict[str, list[Any]] = {}
    for value in values:
        for key, part in value.items():
            merged.setdefault(key, []).extend(part)
    return merged


def _encode_enroll_payload(result: dict[str, Any]) -> dict[str, Any]:
    """Listify an arrays golden payload at the JSON/cache boundary."""
    import numpy as np

    return {
        "keys": np.asarray(result["keys"], dtype=np.int64).reshape(-1, 2).tolist(),
        "counts": np.asarray(result["counts"], dtype=np.int64).tolist(),
        "positions": np.asarray(result["positions"], dtype=np.int64).tolist(),
    }


def _decode_enroll_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Re-type a cached golden-store payload into the arrays value form."""
    import numpy as np

    return {
        "keys": np.asarray(payload["keys"], dtype=np.int64).reshape(-1, 2),
        "counts": np.asarray(payload["counts"], dtype=np.int64),
        "positions": np.asarray(payload["positions"], dtype=np.int64),
    }


@dataclass(frozen=True)
class PUFPairsJob(ShardedJob):
    """A batch of Jaccard pairs: one Figure 5/6 cell or the aging study.

    The result value is a dict of Jaccard index lists in pair-index order --
    ``{"intra": [...], "inter": [...]}`` for quality mode, ``{"intra": [...]}``
    for temperature/aging.  Per-pair RNG streams make the value independent
    of sharding and worker count.
    """

    puf: str
    mode: str  # "quality" | "temperature" | "aging"
    pairs: int
    seed: int
    voltage: str = "all"  # "all" | "ddr3" | "ddr3l"
    base_temperature_c: float = 30.0
    temperature_delta_c: float = 0.0
    aging_hours: float = 8.0
    segment_bytes: int = 8192

    kind = "puf-pairs"

    @property
    def job_id(self) -> str:
        detail = f"dT={self.temperature_delta_c:g}" if self.mode == "temperature" else self.voltage
        return f"{self.mode}[{self.puf},{detail}]"

    @property
    def config(self) -> dict[str, Any]:
        return {
            "puf": self.puf,
            "mode": self.mode,
            "pairs": self.pairs,
            "seed": self.seed,
            "voltage": self.voltage,
            "base_temperature_c": self.base_temperature_c,
            "temperature_delta_c": self.temperature_delta_c,
            "aging_hours": self.aging_hours,
            "segment_bytes": self.segment_bytes,
        }

    def run(self) -> Any:
        return _run_puf_pairs(self, 0, self.pairs)

    def shard_jobs(self, shard_size: int) -> list[Job] | None:
        if shard_size >= self.pairs:
            return None
        return [
            PUFPairsShardJob(batch=self, start=start, stop=stop)
            for start, stop in shard_ranges(self.pairs, shard_size)
        ]

    def merge(self, values: list[Any]) -> Any:
        merged: dict[str, list[float]] = {}
        for value in values:
            for key, part in value.items():
                merged.setdefault(key, []).extend(part)
        return merged

    def encode(self, result: Any) -> dict[str, Any]:
        return result

    def decode(self, payload: dict[str, Any]) -> Any:
        return _decode_pair_values(payload)


@lru_cache(maxsize=8)
def _fleet_runtime(fleet_config):
    """Per-process memo of (fleet, verifier) for one fleet config.

    The verifier enrolls lazily, so the golden store only ever holds the
    (device, challenge) slots the requests of this worker actually touched.
    Sharing it across the shard jobs of one worker is safe: golden responses
    are pure functions of the fleet config, so a memoized slot holds exactly
    the array a fresh enrollment would recompute.
    """
    from repro.fleet.devices import DeviceFleet
    from repro.fleet.verifier import FleetVerifier

    fleet = DeviceFleet(fleet_config)
    return fleet, FleetVerifier(fleet)


def _run_fleet_traffic(
    spec: "FleetTrafficJob", start: int, stop: int
) -> dict[str, list[float]]:
    """Replay requests ``[start, stop)`` of one fleet traffic stream."""
    from repro.fleet.traffic import authenticate_block

    fleet, verifier = _fleet_runtime(spec.fleet_config())
    if spec.warm_golden is not None:
        # Install the pre-enrolled golden payload into the memoized verifier
        # (idempotently: slots other shards already warmed or lazily enrolled
        # are skipped), so this block evaluates no enrollment responses.
        verifier.warm(spec.warm_golden)
    genuine, impostor = authenticate_block(
        fleet, verifier, spec.traffic_config(), start, stop
    )
    return {"genuine": genuine.tolist(), "impostor": impostor.tolist()}


@dataclass(frozen=True)
class FleetTrafficJob(ShardedJob):
    """One authentication traffic stream replayed against one fleet.

    The result value is ``{"genuine": [...], "impostor": [...]}``: the
    Jaccard similarity of every request, split by presenter category, in
    request-index order.  Per-request streams make the value independent of
    sharding and worker count (:mod:`repro.fleet.traffic`).
    """

    fleet_seed: int
    devices: int
    puf: str
    requests: int
    challenges_per_device: int = 4
    impostor_ratio: float = 0.1
    temperature_jitter_c: float = 0.0
    aging_horizon_hours: float = 0.0
    reenroll_hours: float = 0.0
    #: Optional pre-enrolled golden payload (the arrays value of a
    #: :class:`FleetEnrollJob`) handed to every traffic shard worker, which
    #: then skips lazy re-enrollment.  Excluded from equality/hash and from
    #: ``config`` (hence cache keys): warm and lazy enrollment are
    #: bit-identical, so the payload is an execution hint, not an input.
    warm_golden: Any = field(default=None, compare=False, repr=False)

    kind = "fleet-traffic"

    def fleet_config(self):
        """The :class:`repro.fleet.devices.FleetConfig` this job addresses."""
        from repro.fleet.devices import FleetConfig

        return FleetConfig(
            seed=self.fleet_seed,
            devices=self.devices,
            puf=self.puf,
            challenges_per_device=self.challenges_per_device,
        )

    def traffic_config(self):
        """The :class:`repro.fleet.traffic.TrafficConfig` this job replays."""
        from repro.fleet.traffic import TrafficConfig

        return TrafficConfig(
            requests=self.requests,
            impostor_ratio=self.impostor_ratio,
            temperature_jitter_c=self.temperature_jitter_c,
            aging_horizon_hours=self.aging_horizon_hours,
            reenroll_hours=self.reenroll_hours,
        )

    @property
    def job_id(self) -> str:
        if self.aging_horizon_hours:
            detail = (
                f"reenroll={self.reenroll_hours:g}h"
                if self.reenroll_hours
                else "reenroll=never"
            )
        else:
            detail = f"imp={self.impostor_ratio:g}"
        return f"fleet[{self.puf},n={self.devices},{detail}]"

    @property
    def config(self) -> dict[str, Any]:
        return {
            "fleet_seed": self.fleet_seed,
            "devices": self.devices,
            "puf": self.puf,
            "requests": self.requests,
            "challenges_per_device": self.challenges_per_device,
            "impostor_ratio": self.impostor_ratio,
            "temperature_jitter_c": self.temperature_jitter_c,
            "aging_horizon_hours": self.aging_horizon_hours,
            "reenroll_hours": self.reenroll_hours,
        }

    def run(self) -> Any:
        return _run_fleet_traffic(self, 0, self.requests)

    def shard_jobs(self, shard_size: int) -> list[Job] | None:
        if shard_size >= self.requests:
            return None
        return [
            FleetTrafficShardJob(batch=self, start=start, stop=stop)
            for start, stop in shard_ranges(self.requests, shard_size)
        ]

    def merge(self, values: list[Any]) -> Any:
        return _merge_keyed_lists(values)

    def encode(self, result: Any) -> dict[str, Any]:
        return result

    def decode(self, payload: dict[str, Any]) -> Any:
        return _decode_pair_values(payload)


@dataclass(frozen=True)
class FleetTrafficShardJob(Job):
    """Requests ``[start, stop)`` of one fleet traffic stream.

    Wraps the stream job verbatim; the config inherits everything from the
    stream *except* its total request count (like the other shard kinds), so
    replaying a longer stream re-uses every cached block.
    """

    batch: FleetTrafficJob
    start: int
    stop: int

    kind = "fleet-traffic-shard"

    @property
    def job_id(self) -> str:
        return f"{self.batch.job_id}[{self.start}:{self.stop}]"

    @property
    def config(self) -> dict[str, Any]:
        config = dict(self.batch.config)
        del config["requests"]  # block results do not depend on the total
        config["start"] = self.start
        config["stop"] = self.stop
        return config

    def run(self) -> Any:
        return _run_fleet_traffic(self.batch, self.start, self.stop)

    def shard_range(self) -> tuple[int, int]:
        return (self.start, self.stop)

    def encode(self, result: Any) -> dict[str, Any]:
        return result

    def decode(self, payload: dict[str, Any]) -> Any:
        return _decode_pair_values(payload)


def _run_fleet_enroll(
    spec: "FleetEnrollJob", start: int, stop: int
) -> dict[str, Any]:
    """Enroll devices ``[start, stop)`` into a fresh golden-store block.

    The value is the store's *arrays* form (``GoldenStore.to_arrays``): it
    stays numpy end to end through merge and the warm-store handoff into
    traffic workers, and is only listified by ``encode`` at the JSON/cache
    boundary.
    """
    from repro.fleet.verifier import FleetVerifier

    # A fresh store per block: the payload must contain exactly this device
    # range, while the memoized traffic verifier accumulates arbitrary slots.
    fleet, _ = _fleet_runtime(spec.fleet_config())
    verifier = FleetVerifier(fleet)
    verifier.enroll_range(start, stop)
    return verifier.store.to_arrays()


@dataclass(frozen=True)
class FleetEnrollJob(ShardedJob):
    """Fleet-wide enrollment into the verifier's array-native golden store.

    The result value is the :meth:`repro.fleet.verifier.GoldenStore.
    to_arrays` dict covering every (device, challenge) slot in device-major
    order; device ranges merge by array concatenation, so enrollment
    partitions across the pool bit-identically to a serial pass.  ``encode``
    listifies the arrays for the JSON cache; in-process consumers (the
    warm-store handoff into :class:`FleetTrafficShardJob` workers) never see
    a Python-int list copy.
    """

    fleet_seed: int
    devices: int
    puf: str
    challenges_per_device: int = 4

    kind = "fleet-enroll"

    def fleet_config(self):
        """The :class:`repro.fleet.devices.FleetConfig` this job enrolls."""
        from repro.fleet.devices import FleetConfig

        return FleetConfig(
            seed=self.fleet_seed,
            devices=self.devices,
            puf=self.puf,
            challenges_per_device=self.challenges_per_device,
        )

    @property
    def job_id(self) -> str:
        return f"fleet-enroll[{self.puf},n={self.devices}]"

    @property
    def config(self) -> dict[str, Any]:
        return {
            "fleet_seed": self.fleet_seed,
            "devices": self.devices,
            "puf": self.puf,
            "challenges_per_device": self.challenges_per_device,
        }

    def run(self) -> Any:
        return _run_fleet_enroll(self, 0, self.devices)

    def shard_jobs(self, shard_size: int) -> list[Job] | None:
        if shard_size >= self.devices:
            return None
        return [
            FleetEnrollShardJob(batch=self, start=start, stop=stop)
            for start, stop in shard_ranges(self.devices, shard_size)
        ]

    def merge(self, values: list[Any]) -> Any:
        from repro.fleet.verifier import GoldenStore

        return GoldenStore.merge_arrays(values)

    def encode(self, result: Any) -> dict[str, Any]:
        return _encode_enroll_payload(result)

    def decode(self, payload: dict[str, Any]) -> Any:
        return _decode_enroll_payload(payload)


@dataclass(frozen=True)
class FleetEnrollShardJob(Job):
    """Devices ``[start, stop)`` of one fleet enrollment.

    The config drops the fleet's total device count: a device's golden
    responses depend only on ``(fleet_seed, device_id)``, so growing the
    fleet re-uses every previously cached enrollment block.
    """

    batch: FleetEnrollJob
    start: int
    stop: int

    kind = "fleet-enroll-shard"

    @property
    def job_id(self) -> str:
        return f"{self.batch.job_id}[{self.start}:{self.stop}]"

    @property
    def config(self) -> dict[str, Any]:
        config = dict(self.batch.config)
        del config["devices"]  # block results do not depend on the total
        config["start"] = self.start
        config["stop"] = self.stop
        return config

    def run(self) -> Any:
        return _run_fleet_enroll(self.batch, self.start, self.stop)

    def shard_range(self) -> tuple[int, int]:
        return (self.start, self.stop)

    def encode(self, result: Any) -> dict[str, Any]:
        return _encode_enroll_payload(result)

    def decode(self, payload: dict[str, Any]) -> Any:
        return _decode_enroll_payload(payload)


@dataclass(frozen=True)
class PUFPairsShardJob(Job):
    """Pairs ``[start, stop)`` of one PUF pair batch.

    Wraps the parent batch job verbatim so batch parameters have one source
    of truth.  The config inherits everything from the batch *except* its
    total pair count (like :class:`MonteCarloShardJob`), so growing a study
    re-uses every cached shard.
    """

    batch: PUFPairsJob
    start: int
    stop: int

    kind = "puf-pairs-shard"

    @property
    def job_id(self) -> str:
        return f"{self.batch.job_id}[{self.start}:{self.stop}]"

    @property
    def config(self) -> dict[str, Any]:
        config = dict(self.batch.config)
        del config["pairs"]  # shard results do not depend on the batch total
        config["start"] = self.start
        config["stop"] = self.stop
        return config

    def run(self) -> Any:
        return _run_puf_pairs(self.batch, self.start, self.stop)

    def shard_range(self) -> tuple[int, int]:
        return (self.start, self.stop)

    def encode(self, result: Any) -> dict[str, Any]:
        return result

    def decode(self, payload: dict[str, Any]) -> Any:
        return _decode_pair_values(payload)
