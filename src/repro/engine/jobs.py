"""Job abstractions executed by the engine.

A job is a frozen, picklable description of one unit of work with a fully
deterministic configuration: the same job run on any worker process produces
the same result.  Two job kinds cover the repository today:

* :class:`ExperimentJob` wraps one registry driver (``table2``, ``fig7``, ...)
  in quick or paper-scale mode;
* :class:`MonteCarloPointJob` wraps a single (variation, temperature) Monte
  Carlo sweep point so that the Table 11 style sweeps can fan out per point.

Each job also knows how to ``encode``/``decode`` its result to/from a
JSON-safe dict, which is what the content-addressed cache persists.

Cross-package imports happen lazily inside methods: the experiment registry
imports this module at call time and vice versa, and jobs must stay cheap to
unpickle inside ``ProcessPoolExecutor`` workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


class Job:
    """Abstract unit of work; subclasses are frozen dataclasses."""

    #: Stable discriminator used in cache keys and decoded payloads.
    kind: str = "job"

    @property
    def job_id(self) -> str:
        """Human-readable identifier used in progress lines and stats."""
        raise NotImplementedError

    @property
    def config(self) -> dict[str, Any]:
        """Deterministic JSON-safe configuration; part of the cache key."""
        raise NotImplementedError

    def run(self) -> Any:
        """Execute the job and return its result object."""
        raise NotImplementedError

    def encode(self, result: Any) -> dict[str, Any]:
        """Convert a result object to a JSON-safe dict for the cache."""
        raise NotImplementedError

    def decode(self, payload: dict[str, Any]) -> Any:
        """Inverse of :meth:`encode`."""
        raise NotImplementedError


@dataclass(frozen=True)
class ExperimentJob(Job):
    """One registry experiment (a paper table or figure) in one mode."""

    experiment_id: str
    quick: bool = True

    kind = "experiment"

    @property
    def job_id(self) -> str:
        return self.experiment_id

    @property
    def config(self) -> dict[str, Any]:
        return {"experiment_id": self.experiment_id, "quick": self.quick}

    def run(self) -> Any:
        from repro.experiments.registry import EXPERIMENTS

        try:
            driver = EXPERIMENTS[self.experiment_id]
        except KeyError:
            raise KeyError(
                f"unknown experiment {self.experiment_id!r}; known experiments: "
                f"{sorted(EXPERIMENTS)}"
            ) from None
        return driver(self.quick)

    def encode(self, result: Any) -> dict[str, Any]:
        return result.to_dict()

    def decode(self, payload: dict[str, Any]) -> Any:
        from repro.experiments.base import ExperimentResult

        return ExperimentResult.from_dict(payload)


@dataclass(frozen=True)
class MonteCarloPointJob(Job):
    """One (variation, temperature) point of a Monte Carlo sweep."""

    variation_percent: float
    temperature_c: float
    samples: int = 100_000
    seed: int = 12345

    kind = "montecarlo-point"

    @property
    def job_id(self) -> str:
        return f"mc[{self.variation_percent:g}%,{self.temperature_c:g}C]"

    @property
    def config(self) -> dict[str, Any]:
        return {
            "variation_percent": self.variation_percent,
            "temperature_c": self.temperature_c,
            "samples": self.samples,
            "seed": self.seed,
        }

    def run(self) -> Any:
        from repro.circuit.montecarlo import MonteCarloEngine

        engine = MonteCarloEngine(seed=self.seed, samples=self.samples)
        return engine.run_point(self.variation_percent, self.temperature_c)

    def encode(self, result: Any) -> dict[str, Any]:
        return {
            "variation_percent": result.variation_percent,
            "temperature_c": result.temperature_c,
            "samples": result.samples,
            "bit_flips": result.bit_flips,
        }

    def decode(self, payload: dict[str, Any]) -> Any:
        from repro.circuit.montecarlo import MonteCarloResult

        return MonteCarloResult(**payload)
