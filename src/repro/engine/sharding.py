"""Sharded execution: split jobs, schedule every shard on one pool, merge.

:func:`iter_sharded` is the intra-job parallelism core.  It expands each
:class:`~repro.engine.jobs.ShardedJob` recursively (an experiment into its
sweep points / pair batches, each of those into sample or pair ranges), runs
the resulting leaves through the ordinary
:func:`~repro.engine.executor.iter_jobs` stream -- so all shards of all jobs
share one process pool and each shard hits the content-addressed cache
individually -- and keeps *incremental merge state per parent job*: the
moment a parent's last outstanding shard lands, its children merge and the
parent's ``finished`` event is emitted, in completion order, with no global
barrier.  ``ordered=True`` gates top-level completion events back into
submission order for deterministic streaming output.

:func:`run_sharded` drains the stream and returns one merged
:class:`~repro.engine.executor.JobOutcome` per submitted job, in submission
order -- the original call-and-wait contract.

Because every leaf owns a partition-independent RNG stream, merged outcomes
are bit-identical to a serial ``run()`` for every ``shard_size`` and worker
count.  ``shard_size`` is therefore *not* part of any cache key: it only
decides how the same deterministic work is scheduled.

Cache interaction:

* a job already cached at any level short-circuits its whole subtree (and
  settles with a ``cached`` event as soon as expansion sees it);
* fresh leaf results are cached by the executor as usual;
* merged intermediate and top-level results are written back too, so a warm
  re-run is served without touching a single shard -- while a re-run with
  *more* samples misses only the parents and the new tail shards.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro import telemetry
from repro.engine.cache import ResultCache
from repro.engine.executor import (
    CACHED,
    FAILED,
    FINISHED,
    CancelToken,
    JobEvent,
    JobOutcome,
    PoolSupervisor,
    ProgressFn,
    EngineError,
    iter_jobs,
)
from repro.engine.jobs import Job, ShardedJob


@dataclass
class _Node:
    """One job in the expansion tree of a sharded run."""

    job: Job
    children: "list[_Node]" = field(default_factory=list)
    outcome: JobOutcome | None = None  # set for cache hits and settled jobs


def _expand(job: Job, shard_size: int, cache: ResultCache | None) -> _Node:
    node = _Node(job)
    subs = job.shard_jobs(shard_size) if isinstance(job, ShardedJob) else None
    if not subs:
        return node  # leaf: executed (or cache-served) by iter_jobs
    cached = cache.get(job) if cache is not None else None
    if cached is not None:
        node.outcome = JobOutcome(job=job, value=cached, cached=True)
        return node
    node.children = [_expand(sub, shard_size, cache) for sub in subs]
    return node


def _leaves(node: _Node, out: "list[_Node]") -> None:
    if node.outcome is not None:
        return
    if not node.children:
        out.append(node)
        return
    for child in node.children:
        _leaves(child, out)


def _merge_outcome(node: _Node, cache: ResultCache | None) -> JobOutcome:
    """Fold the (fully settled) children of ``node`` into its own outcome."""
    child_outcomes = [child.outcome for child in node.children]
    failures = [outcome for outcome in child_outcomes if not outcome.ok]
    if failures:  # only reachable with fail_fast=False
        errors = "\n".join(
            f"[{outcome.job.job_id}] {outcome.error}" for outcome in failures
        )
        return JobOutcome(job=node.job, error=errors)
    if telemetry.collection_enabled() or telemetry.tracing_active():
        with telemetry.span(
            "job.merge",
            kind="engine",
            job=node.job.job_id,
            job_kind=node.job.kind,
            children=len(child_outcomes),
        ):
            start = time.perf_counter()
            value = node.job.merge([outcome.value for outcome in child_outcomes])
            elapsed = time.perf_counter() - start
        reg = telemetry.registry()
        reg.counter(telemetry.ENGINE_MERGES).inc()
        reg.histogram(telemetry.ENGINE_MERGE_SECONDS).observe(elapsed)
    else:
        value = node.job.merge([outcome.value for outcome in child_outcomes])
    if cache is not None:
        cache.put(node.job, value)
    return JobOutcome(
        job=node.job,
        value=value,
        duration_s=sum(outcome.duration_s for outcome in child_outcomes),
        cached=all(outcome.cached for outcome in child_outcomes),
    )


def _propagate(
    node: _Node,
    parents: dict[int, _Node],
    remaining: dict[int, int],
    cache: ResultCache | None,
) -> Iterator[JobEvent]:
    """Walk upward from a freshly settled node, merging every parent whose
    last outstanding child just landed and emitting its terminal event."""
    current = node
    while True:
        parent = parents.get(id(current))
        if parent is None:
            return
        remaining[id(parent)] -= 1
        if remaining[id(parent)] > 0:
            return
        outcome = _merge_outcome(parent, cache)
        parent.outcome = outcome
        yield JobEvent(FINISHED if outcome.ok else FAILED, parent.job, outcome=outcome)
        current = parent


def _ordered_gate(
    events: Iterator[JobEvent], roots: Sequence[Job]
) -> Iterator[JobEvent]:
    """Re-emit top-level terminal events in submission order.

    Non-root events (leaves, intermediate merges) flow through untouched in
    completion order; each root's settling event is held until every earlier
    root has settled.  Roots that never settle (fail-fast cancellations)
    leave gaps, so whatever is still buffered flushes, in order, at the end.
    """
    position = {id(job): index for index, job in enumerate(roots)}
    ready: dict[int, JobEvent] = {}
    next_index = 0
    for event in events:
        if event.terminal and id(event.job) in position:
            ready[position[id(event.job)]] = event
            while next_index in ready:
                yield ready.pop(next_index)
                next_index += 1
        else:
            yield event
    for index in sorted(ready):
        yield ready[index]


def iter_sharded(
    jobs: Sequence[Job],
    *,
    shard_size: int | None = None,
    workers: int = 1,
    cache: ResultCache | None = None,
    fail_fast: bool = True,
    ordered: bool = False,
    pool: "Executor | PoolSupervisor | None" = None,
    cancel: CancelToken | None = None,
) -> Iterator[JobEvent]:
    """Stream :class:`JobEvent` for a sharded run, merging incrementally.

    Leaf events (``scheduled``/``started``/``cached``/``finished``/
    ``failed``) carry leaf-cohort ``index``/``total``; a parent job's
    ``finished`` event -- emitted the moment its last shard lands, with no
    barrier on sibling jobs -- carries ``index=None``.  Jobs cached at any
    level settle with a ``cached`` event during expansion.  ``ordered=True``
    holds top-level terminal events back into submission order (deterministic
    output); everything else still streams in completion order.

    ``shard_size=None`` (or jobs that decline to shard) degrades exactly to
    :func:`~repro.engine.executor.iter_jobs`.  A ``cancel`` token cancels
    the underlying leaf stream; parents whose shards were abandoned never
    merge and emit no terminal event.
    """
    jobs = list(jobs)
    if shard_size is None:
        stream = iter_jobs(
            jobs, workers=workers, cache=cache, fail_fast=fail_fast, pool=pool,
            cancel=cancel,
        )
        yield from _ordered_gate(stream, jobs) if ordered else stream
        return
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")

    roots = [_expand(job, shard_size, cache) for job in jobs]

    def stream() -> Iterator[JobEvent]:
        parents: dict[int, _Node] = {}
        remaining: dict[int, int] = {}
        settled: list[_Node] = []

        def index_tree(node: _Node) -> None:
            if node.outcome is not None:
                settled.append(node)
                return
            if node.children:
                remaining[id(node)] = len(node.children)
                for child in node.children:
                    parents[id(child)] = node
                    index_tree(child)

        for root in roots:
            index_tree(root)

        # Jobs served whole from the cache settle immediately -- and may
        # complete parents outright when every sibling was also cached.
        for node in settled:
            yield JobEvent(CACHED, node.job, outcome=node.outcome)
            yield from _propagate(node, parents, remaining, cache)

        leaves: list[_Node] = []
        for root in roots:
            _leaves(root, leaves)
        for event in iter_jobs(
            [leaf.job for leaf in leaves],
            workers=workers,
            cache=cache,
            fail_fast=fail_fast,
            pool=pool,
            cancel=cancel,
        ):
            yield event
            if not event.terminal:
                continue
            leaf = leaves[event.index]
            leaf.outcome = event.outcome
            yield from _propagate(leaf, parents, remaining, cache)

    yield from _ordered_gate(stream(), jobs) if ordered else stream()


def run_sharded(
    jobs: Sequence[Job],
    *,
    shard_size: int | None = None,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: ProgressFn | None = None,
    fail_fast: bool = True,
    ordered: bool = False,
    pool: Executor | None = None,
) -> list[JobOutcome]:
    """Execute ``jobs``, splitting shardable ones into ``shard_size``-unit
    shards scheduled together on one pool; outcomes come back merged, in
    submission order, bit-identical to a serial run for any configuration.

    Thin drain of :func:`iter_sharded`: progress is reported at leaf
    granularity as events land, and with ``fail_fast`` (the default) leaf
    failures raise :class:`~repro.engine.executor.EngineError` after
    in-flight shards drain into the cache.
    """
    jobs = list(jobs)
    position: dict[int, list[int]] = {}
    for index, job in enumerate(jobs):
        position.setdefault(id(job), []).append(index)
    outcomes: dict[int, JobOutcome] = {}
    failures: list[JobOutcome] = []
    done = 0
    for event in iter_sharded(
        jobs,
        shard_size=shard_size,
        workers=workers,
        cache=cache,
        fail_fast=fail_fast,
        ordered=ordered,
        pool=pool,
    ):
        if not event.terminal:
            continue
        if event.total is not None and progress is not None:
            done += 1
            progress(done, event.total, event.outcome)
        if not event.outcome.ok and event.total is not None:
            failures.append(event.outcome)
        for index in position.get(id(event.job), ()):
            outcomes[index] = event.outcome
    if failures and fail_fast:
        raise EngineError(failures)
    return [outcomes[index] for index in range(len(jobs))]
