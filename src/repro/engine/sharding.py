"""Sharded execution: split jobs, schedule every shard on one pool, merge.

:func:`run_sharded` is the intra-job parallelism entry point.  It expands
each :class:`~repro.engine.jobs.ShardedJob` recursively (an experiment into
its sweep points / pair batches, each of those into sample or pair ranges),
runs the resulting leaves through the ordinary
:func:`~repro.engine.executor.run_jobs` -- so all shards of all jobs share
one process pool and each shard hits the content-addressed cache
individually -- and merges shard results bottom-up into one
:class:`~repro.engine.executor.JobOutcome` per submitted job.

Because every leaf owns a partition-independent RNG stream, merged outcomes
are bit-identical to a serial ``run()`` for every ``shard_size`` and worker
count.  ``shard_size`` is therefore *not* part of any cache key: it only
decides how the same deterministic work is scheduled.

Cache interaction:

* a job already cached at any level short-circuits its whole subtree;
* fresh leaf results are cached by ``run_jobs`` as usual;
* merged intermediate and top-level results are written back too, so a warm
  re-run is served without touching a single shard -- while a re-run with
  *more* samples misses only the parents and the new tail shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.engine.cache import ResultCache
from repro.engine.executor import JobOutcome, ProgressFn, run_jobs
from repro.engine.jobs import Job, ShardedJob


@dataclass
class _Node:
    """One job in the expansion tree of a sharded run."""

    job: Job
    children: "list[_Node]" = field(default_factory=list)
    outcome: JobOutcome | None = None  # set for cache hits and executed leaves


def _expand(job: Job, shard_size: int, cache: ResultCache | None) -> _Node:
    node = _Node(job)
    subs = job.shard_jobs(shard_size) if isinstance(job, ShardedJob) else None
    if not subs:
        return node  # leaf: executed (or cache-served) by run_jobs
    cached = cache.get(job) if cache is not None else None
    if cached is not None:
        node.outcome = JobOutcome(job=job, value=cached, cached=True)
        return node
    node.children = [_expand(sub, shard_size, cache) for sub in subs]
    return node


def _leaves(node: _Node, out: "list[_Node]") -> None:
    if node.outcome is not None:
        return
    if not node.children:
        out.append(node)
        return
    for child in node.children:
        _leaves(child, out)


def _assemble(node: _Node, cache: ResultCache | None) -> JobOutcome:
    if node.outcome is not None:
        return node.outcome
    child_outcomes = [_assemble(child, cache) for child in node.children]
    failures = [outcome for outcome in child_outcomes if not outcome.ok]
    if failures:  # only reachable with fail_fast=False
        errors = "\n".join(
            f"[{outcome.job.job_id}] {outcome.error}" for outcome in failures
        )
        return JobOutcome(job=node.job, error=errors)
    value = node.job.merge([outcome.value for outcome in child_outcomes])
    if cache is not None:
        cache.put(node.job, value)
    return JobOutcome(
        job=node.job,
        value=value,
        duration_s=sum(outcome.duration_s for outcome in child_outcomes),
        cached=all(outcome.cached for outcome in child_outcomes),
    )


def run_sharded(
    jobs: Sequence[Job],
    *,
    shard_size: int | None = None,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: ProgressFn | None = None,
    fail_fast: bool = True,
) -> list[JobOutcome]:
    """Execute ``jobs``, splitting shardable ones into ``shard_size``-unit
    shards scheduled together on one pool; outcomes come back merged, in
    submission order, bit-identical to a serial run for any configuration.

    ``shard_size=None`` (or jobs that decline to shard) degrades exactly to
    :func:`run_jobs`.  Progress is reported at leaf granularity.
    """
    if shard_size is None:
        return run_jobs(
            jobs, workers=workers, cache=cache, progress=progress, fail_fast=fail_fast
        )
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    roots = [_expand(job, shard_size, cache) for job in jobs]
    leaves: list[_Node] = []
    for root in roots:
        _leaves(root, leaves)
    leaf_outcomes = run_jobs(
        [leaf.job for leaf in leaves],
        workers=workers,
        cache=cache,
        progress=progress,
        fail_fast=fail_fast,
    )
    for leaf, outcome in zip(leaves, leaf_outcomes):
        leaf.outcome = outcome
    outcomes = [_assemble(root, cache) for root in roots]
    return outcomes
