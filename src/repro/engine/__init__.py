"""repro.engine -- parallel experiment execution with result caching.

The engine is the substrate every scaling feature builds on:

* :mod:`repro.engine.jobs` -- picklable job descriptions (registry
  experiments, Monte Carlo sweep points/shards, PUF pair batches) with
  deterministic configs, plus the :class:`ShardedJob` split/merge protocol;
* :mod:`repro.engine.executor` -- the :class:`JobEvent` stream
  (:func:`iter_jobs`) over serial / ``ProcessPoolExecutor`` execution, with
  :func:`run_jobs` as the drain-the-stream wrapper (progress reporting,
  fail-fast error aggregation, submission-order outcomes);
* :mod:`repro.engine.sharding` -- :func:`iter_sharded`/:func:`run_sharded`,
  which expand sharded jobs so that the work *inside* one job (Monte Carlo
  samples, Jaccard pairs) fans out across the same pool and merges the
  moment each job's last shard lands, bit-identical to a serial run;
* :mod:`repro.engine.daemon` -- a unix-socket server owning a persistent
  process pool and an in-memory result index, so repeat invocations skip
  pool spin-up and disk re-reads entirely;
* :mod:`repro.engine.cache` -- a content-addressed on-disk result store
  keyed by SHA-256(kind + config + code fingerprint), with LRU pruning;
* :mod:`repro.engine.serialization` -- lossless JSON round-trips for results
  and the canonical encoding behind the cache keys;
* :mod:`repro.engine.sweep` -- batch/grid fan-out for parameter studies.

Quickstart
----------
>>> from repro.engine import ExperimentJob, ResultCache, run_jobs
>>> outcomes = run_jobs([ExperimentJob("table2")], workers=1)
>>> outcomes[0].value.experiment_id
'table2'
"""

from repro.engine.cache import CacheStats, ResultCache, default_cache_dir, source_fingerprint
from repro.engine.daemon import (
    DaemonClient,
    DaemonError,
    ExperimentDaemon,
    MemoryIndexCache,
    default_socket_path,
    start_daemon,
    stop_daemon,
)
from repro.engine.executor import (
    CACHED,
    FAILED,
    FINISHED,
    SCHEDULED,
    STARTED,
    TERMINAL_EVENTS,
    CancelToken,
    EngineError,
    JobEvent,
    JobOutcome,
    PoolSupervisor,
    iter_jobs,
    run_jobs,
)
from repro.engine.faults import FAULTS_ENV, FaultInjector, FaultPlan
from repro.engine.jobs import (
    ExperimentJob,
    FleetEnrollJob,
    FleetEnrollShardJob,
    FleetTrafficJob,
    FleetTrafficShardJob,
    Job,
    MonteCarloPointJob,
    MonteCarloShardJob,
    PUFPairsJob,
    PUFPairsShardJob,
    ShardedJob,
    shard_ranges,
)
from repro.engine.serialization import (
    canonical_json,
    result_from_json,
    result_to_json,
    to_jsonable,
)
from repro.engine.sharding import iter_sharded, run_sharded
from repro.engine.sweep import grid, monte_carlo_grid, run_sweep

__all__ = [
    "CACHED",
    "FAILED",
    "FINISHED",
    "SCHEDULED",
    "STARTED",
    "TERMINAL_EVENTS",
    "CacheStats",
    "CancelToken",
    "DaemonClient",
    "DaemonError",
    "EngineError",
    "ExperimentDaemon",
    "ExperimentJob",
    "FAULTS_ENV",
    "FaultInjector",
    "FaultPlan",
    "FleetEnrollJob",
    "FleetEnrollShardJob",
    "FleetTrafficJob",
    "FleetTrafficShardJob",
    "Job",
    "JobEvent",
    "JobOutcome",
    "MemoryIndexCache",
    "MonteCarloPointJob",
    "MonteCarloShardJob",
    "PoolSupervisor",
    "PUFPairsJob",
    "PUFPairsShardJob",
    "ResultCache",
    "ShardedJob",
    "canonical_json",
    "default_cache_dir",
    "default_socket_path",
    "grid",
    "iter_jobs",
    "iter_sharded",
    "monte_carlo_grid",
    "result_from_json",
    "result_to_json",
    "run_jobs",
    "run_sharded",
    "run_sweep",
    "shard_ranges",
    "source_fingerprint",
    "start_daemon",
    "stop_daemon",
    "to_jsonable",
]
