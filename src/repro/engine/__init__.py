"""repro.engine -- parallel experiment execution with result caching.

The engine is the substrate every scaling feature builds on:

* :mod:`repro.engine.jobs` -- picklable job descriptions (registry
  experiments, Monte Carlo sweep points/shards, PUF pair batches) with
  deterministic configs, plus the :class:`ShardedJob` split/merge protocol;
* :mod:`repro.engine.executor` -- serial / ``ProcessPoolExecutor`` runners
  with progress reporting and fail-fast error aggregation;
* :mod:`repro.engine.sharding` -- :func:`run_sharded`, which expands sharded
  jobs so that the work *inside* one job (Monte Carlo samples, Jaccard
  pairs) fans out across the same pool, bit-identical to a serial run;
* :mod:`repro.engine.cache` -- a content-addressed on-disk result store
  keyed by SHA-256(kind + config + code fingerprint), with LRU pruning;
* :mod:`repro.engine.serialization` -- lossless JSON round-trips for results
  and the canonical encoding behind the cache keys;
* :mod:`repro.engine.sweep` -- batch/grid fan-out for parameter studies.

Quickstart
----------
>>> from repro.engine import ExperimentJob, ResultCache, run_jobs
>>> outcomes = run_jobs([ExperimentJob("table2")], workers=1)
>>> outcomes[0].value.experiment_id
'table2'
"""

from repro.engine.cache import CacheStats, ResultCache, default_cache_dir, source_fingerprint
from repro.engine.executor import EngineError, JobOutcome, run_jobs
from repro.engine.jobs import (
    ExperimentJob,
    Job,
    MonteCarloPointJob,
    MonteCarloShardJob,
    PUFPairsJob,
    PUFPairsShardJob,
    ShardedJob,
    shard_ranges,
)
from repro.engine.serialization import (
    canonical_json,
    result_from_json,
    result_to_json,
    to_jsonable,
)
from repro.engine.sharding import run_sharded
from repro.engine.sweep import grid, monte_carlo_grid, run_sweep

__all__ = [
    "CacheStats",
    "EngineError",
    "ExperimentJob",
    "Job",
    "JobOutcome",
    "MonteCarloPointJob",
    "MonteCarloShardJob",
    "PUFPairsJob",
    "PUFPairsShardJob",
    "ResultCache",
    "ShardedJob",
    "canonical_json",
    "default_cache_dir",
    "grid",
    "monte_carlo_grid",
    "result_from_json",
    "result_to_json",
    "run_jobs",
    "run_sharded",
    "run_sweep",
    "shard_ranges",
    "source_fingerprint",
    "to_jsonable",
]
