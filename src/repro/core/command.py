"""The CODIC DDRx command and its encoding (Section 4.2.2).

The CODIC command has the same bus format as a regular activation: it carries
a bank and row address, and it additionally selects which CODIC mode-register
set supplies the internal signal timings.  The paper integrates it into the
JEDEC command space using reserved encodings, as prior academic work and
patents do for other new commands.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CODICCommand:
    """One CODIC command issued on the DDRx bus."""

    bank: int
    row: int
    register_set: int = 0
    rank: int = 0
    channel: int = 0

    def __post_init__(self) -> None:
        for name in ("bank", "row", "register_set", "rank", "channel"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class CODICCommandEncoder:
    """Encodes/decodes CODIC commands into a DDRx-style address field.

    The encoding mirrors how an activation carries its row address: the row
    bits occupy the address pins, the bank bits occupy BA[2:0], and the
    register-set index rides on otherwise unused high address pins (there is
    reserved space in the JEDEC command encoding for this, per Section 4.2.2).
    """

    row_bits: int = 16
    bank_bits: int = 3
    register_set_bits: int = 2

    def encode(self, command: CODICCommand) -> int:
        """Pack a command into an integer bus word."""
        if command.row >= (1 << self.row_bits):
            raise ValueError(
                f"row {command.row} does not fit in {self.row_bits} address bits"
            )
        if command.bank >= (1 << self.bank_bits):
            raise ValueError(
                f"bank {command.bank} does not fit in {self.bank_bits} bank bits"
            )
        if command.register_set >= (1 << self.register_set_bits):
            raise ValueError(
                f"register set {command.register_set} does not fit in "
                f"{self.register_set_bits} bits"
            )
        word = command.row
        word |= command.bank << self.row_bits
        word |= command.register_set << (self.row_bits + self.bank_bits)
        return word

    def decode(self, word: int, rank: int = 0, channel: int = 0) -> CODICCommand:
        """Unpack an integer bus word into a command."""
        if word < 0:
            raise ValueError("bus word must be non-negative")
        row = word & ((1 << self.row_bits) - 1)
        bank = (word >> self.row_bits) & ((1 << self.bank_bits) - 1)
        register_set = (word >> (self.row_bits + self.bank_bits)) & (
            (1 << self.register_set_bits) - 1
        )
        return CODICCommand(
            bank=bank, row=row, register_set=register_set, rank=rank, channel=channel
        )
