"""CODIC mode registers and the MRS programming interface (Section 4.2.2).

CODIC stores the timings of the four internal signals in four dedicated
10-bit mode registers (MRs), programmed through the standard DDRx Mode
Register Set (MRS) command.  Each register packs a signal's assert time
(5 bits) and de-assert time (5 bits); a value of zero means the signal is not
driven by the CODIC command.

A chip may expose several *register sets* so that different CODIC variants
(or different DRAM regions) can be configured simultaneously, as the paper
suggests for supporting more than one variant at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.signals import CONTROL_SIGNALS, SignalSchedule

#: Width of one CODIC mode register in bits.
MODE_REGISTER_WIDTH_BITS = 10

#: Maximum value storable in a CODIC mode register.
MODE_REGISTER_MAX_VALUE = (1 << MODE_REGISTER_WIDTH_BITS) - 1


@dataclass
class ModeRegister:
    """One 10-bit CODIC mode register."""

    name: str
    value: int = 0

    def write(self, value: int) -> None:
        """Write a raw register value (range-checked)."""
        if not 0 <= value <= MODE_REGISTER_MAX_VALUE:
            raise ValueError(
                f"mode register value {value} out of range "
                f"[0, {MODE_REGISTER_MAX_VALUE}]"
            )
        self.value = value

    def read(self) -> int:
        """Read the raw register value."""
        return self.value


@dataclass(frozen=True)
class MRSCommand:
    """A Mode Register Set command targeting one CODIC register.

    ``register_set`` selects which CODIC register bank is addressed when the
    chip implements more than one; ``signal`` identifies the register within
    the bank; ``value`` is the 10-bit payload.
    """

    signal: str
    value: int
    register_set: int = 0

    def __post_init__(self) -> None:
        if self.signal not in CONTROL_SIGNALS:
            raise ValueError(f"unknown control signal {self.signal!r}")
        if not 0 <= self.value <= MODE_REGISTER_MAX_VALUE:
            raise ValueError(f"MRS value {self.value} does not fit in 10 bits")
        if self.register_set < 0:
            raise ValueError("register_set must be non-negative")


@dataclass
class ModeRegisterFile:
    """A bank of CODIC mode-register sets.

    The default configuration provides a single register set (4 registers);
    manufacturers can provision more to hold several variants at once.
    """

    register_sets: int = 1
    _registers: list[dict[str, ModeRegister]] = field(init=False)

    def __post_init__(self) -> None:
        if self.register_sets < 1:
            raise ValueError("at least one register set is required")
        self._registers = [
            {signal: ModeRegister(name=f"MR_CODIC_{signal}_{set_index}")
             for signal in CONTROL_SIGNALS}
            for set_index in range(self.register_sets)
        ]

    def apply_mrs(self, command: MRSCommand) -> None:
        """Execute one MRS command against this register file."""
        if command.register_set >= self.register_sets:
            raise IndexError(
                f"register set {command.register_set} does not exist "
                f"(chip has {self.register_sets})"
            )
        self._registers[command.register_set][command.signal].write(command.value)

    def program_schedule(self, schedule: SignalSchedule, register_set: int = 0) -> list[MRSCommand]:
        """Program a full signal schedule, returning the MRS commands issued."""
        commands = [
            MRSCommand(signal=signal, value=value, register_set=register_set)
            for signal, value in schedule.to_register_values().items()
        ]
        for command in commands:
            self.apply_mrs(command)
        return commands

    def read_schedule(self, register_set: int = 0) -> SignalSchedule:
        """Decode the currently programmed schedule from a register set."""
        if register_set >= self.register_sets:
            raise IndexError(
                f"register set {register_set} does not exist "
                f"(chip has {self.register_sets})"
            )
        values = {
            signal: register.read()
            for signal, register in self._registers[register_set].items()
        }
        return SignalSchedule.from_register_values(values)

    def raw_values(self, register_set: int = 0) -> dict[str, int]:
        """Raw 10-bit payloads of one register set (diagnostics/tests)."""
        return {
            signal: register.read()
            for signal, register in self._registers[register_set].items()
        }
