"""Internal DRAM control signals and CODIC signal schedules.

CODIC controls four internal signals (Section 2 of the paper):

* ``wl``       -- the wordline, connecting the cell capacitor to the bitline;
* ``EQ``       -- the equalization/precharge signal, driving the bitline pair
                  to Vdd/2;
* ``sense_p``  -- enable of the PMOS half of the sense amplifier;
* ``sense_n``  -- enable of the NMOS half of the sense amplifier.

A *signal schedule* specifies, for each signal, whether it is pulsed during
the command and, if so, at which nanosecond it asserts and de-asserts.  CODIC
allows assertion/de-assertion at integer nanoseconds within a 25 ns window
(time steps ``0 .. 24``), which is exactly the encoding stored in the CODIC
mode registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.circuit.waveform import ControlWaveforms

#: The four internal signals controllable by CODIC, in canonical order.
CONTROL_SIGNALS: tuple[str, ...] = ("wl", "EQ", "sense_p", "sense_n")

#: Length of the CODIC control window in nanoseconds.
SIGNAL_WINDOW_NS: float = 25.0

#: Granularity of signal control in nanoseconds.
SIGNAL_STEP_NS: float = 1.0


@dataclass(frozen=True)
class SignalPulse:
    """One assert/de-assert pulse of an internal signal.

    ``start_ns`` and ``end_ns`` must be integer multiples of
    :data:`SIGNAL_STEP_NS` inside the CODIC window, with ``start < end``.
    """

    start_ns: int
    end_ns: int

    def __post_init__(self) -> None:
        if not isinstance(self.start_ns, int) or not isinstance(self.end_ns, int):
            raise TypeError("pulse times must be integers (nanoseconds)")
        if not 0 <= self.start_ns < self.end_ns <= SIGNAL_WINDOW_NS - 1:
            raise ValueError(
                f"pulse ({self.start_ns}, {self.end_ns}) outside the valid range "
                f"0 <= start < end <= {int(SIGNAL_WINDOW_NS) - 1}"
            )

    @property
    def duration_ns(self) -> int:
        """Pulse width in nanoseconds."""
        return self.end_ns - self.start_ns

    def as_tuple(self) -> tuple[float, float]:
        """(start, end) as floats, for waveform construction."""
        return (float(self.start_ns), float(self.end_ns))


@dataclass(frozen=True)
class SignalSchedule:
    """Full CODIC signal schedule: an optional pulse per control signal.

    Signals not present in ``pulses`` remain de-asserted for the whole
    command, matching the paper's Table 1 notation (a command only lists the
    signals it toggles).
    """

    pulses: Mapping[str, SignalPulse]

    def __post_init__(self) -> None:
        for signal in self.pulses:
            if signal not in CONTROL_SIGNALS:
                raise ValueError(
                    f"unknown control signal {signal!r}; "
                    f"valid signals are {CONTROL_SIGNALS}"
                )

    @classmethod
    def from_timings(
        cls, timings: Mapping[str, tuple[int, int] | None]
    ) -> "SignalSchedule":
        """Build a schedule from ``signal -> (start_ns, end_ns)`` pairs."""
        pulses = {
            signal: SignalPulse(start_ns=start_end[0], end_ns=start_end[1])
            for signal, start_end in timings.items()
            if start_end is not None
        }
        return cls(pulses=pulses)

    def pulse(self, signal: str) -> SignalPulse | None:
        """Pulse of ``signal``, or ``None`` when the signal is not driven."""
        if signal not in CONTROL_SIGNALS:
            raise KeyError(f"unknown control signal {signal!r}")
        return self.pulses.get(signal)

    def driven_signals(self) -> tuple[str, ...]:
        """Signals that are pulsed by this schedule, in canonical order."""
        return tuple(s for s in CONTROL_SIGNALS if s in self.pulses)

    def assert_order(self) -> tuple[str, ...]:
        """Driven signals sorted by assertion time (ties in canonical order)."""
        return tuple(
            sorted(
                self.driven_signals(),
                key=lambda s: (self.pulses[s].start_ns, CONTROL_SIGNALS.index(s)),
            )
        )

    def last_deassert_ns(self) -> int:
        """Latest de-assertion time across all driven signals (0 when none)."""
        if not self.pulses:
            return 0
        return max(pulse.end_ns for pulse in self.pulses.values())

    def first_assert_ns(self) -> int | None:
        """Earliest assertion time, or ``None`` when no signal is driven."""
        if not self.pulses:
            return None
        return min(pulse.start_ns for pulse in self.pulses.values())

    def to_waveforms(self) -> ControlWaveforms:
        """Convert to the circuit simulator's drive-waveform representation."""
        return ControlWaveforms.from_pulses(
            {
                signal: (self.pulses[signal].as_tuple() if signal in self.pulses else None)
                for signal in CONTROL_SIGNALS
            },
            window_ns=SIGNAL_WINDOW_NS,
        )

    def to_register_values(self) -> dict[str, int]:
        """Encode the schedule as the 4 mode-register payloads.

        Each register holds a 10-bit value: 5 bits of start time and 5 bits of
        end time.  A register value of 0 means "signal not driven" (start and
        end both zero is not a valid pulse, so the encoding is unambiguous).
        """
        values: dict[str, int] = {}
        for signal in CONTROL_SIGNALS:
            pulse = self.pulses.get(signal)
            if pulse is None:
                values[signal] = 0
            else:
                values[signal] = (pulse.start_ns << 5) | pulse.end_ns
        return values

    @classmethod
    def from_register_values(cls, values: Mapping[str, int]) -> "SignalSchedule":
        """Decode a schedule from mode-register payloads (inverse of encode)."""
        timings: dict[str, tuple[int, int] | None] = {}
        for signal in CONTROL_SIGNALS:
            raw = values.get(signal, 0)
            if raw == 0:
                timings[signal] = None
                continue
            start = (raw >> 5) & 0x1F
            end = raw & 0x1F
            timings[signal] = (start, end)
        return cls.from_timings(timings)

    def describe(self) -> str:
        """Human-readable one-line description, Table-1 style."""
        if not self.pulses:
            return "(no signals driven)"
        parts = [
            f"{signal} [{self.pulses[signal].start_ns}↑,{self.pulses[signal].end_ns}↓]"
            for signal in self.driven_signals()
        ]
        return " ".join(parts)


def iter_valid_pulses() -> Iterator[SignalPulse]:
    """Iterate over every valid single-signal pulse (300 per signal).

    The paper counts n = sum_{i=1}^{w-1} i = 300 valid pulses for a window of
    w = 25 steps: a pulse can start at step s and end at any later step within
    the window.
    """
    window = int(SIGNAL_WINDOW_NS)
    for start in range(0, window - 1):
        for end in range(start + 1, window):
            yield SignalPulse(start_ns=start, end_ns=end)
