"""Configurable delay-element circuit and its cost model (Section 4.2.1).

CODIC generates each internal signal through either the fixed DDRx delay path
(for regular commands) or a *configurable* delay path built from a chain of
buffers feeding a 25-to-1 multiplexer, selected by the ``IS_DDRx`` control.
Each buffer stage contributes ~1 ns of propagation delay, so selecting tap
``k`` delays the signal by ``k`` nanoseconds relative to the command start.

The cost model reproduces the numbers reported in the paper:

* area overhead of ~0.28 % per mat per signal (1.12 % for all four signals),
* energy overhead below 500 fJ per command,
* 0.028 ns of extra delay from the 2-to-1 output multiplexer on the regular
  DDRx path, compensated by buffer sizing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.signals import CONTROL_SIGNALS, SIGNAL_WINDOW_NS

#: Number of buffer stages in the configurable chain (one tap per nanosecond
#: of the CODIC window, minus the zero-delay tap).
BUFFER_STAGES = int(SIGNAL_WINDOW_NS) - 1

#: Propagation delay contributed by one buffer stage (ns).
BUFFER_STAGE_DELAY_NS = 1.0

#: Extra delay introduced on the regular DDRx path by the 2-to-1 multiplexer
#: that selects between the fixed and the configurable delay element (ns).
PATH_SELECT_MUX_DELAY_NS = 0.028

#: Area overhead of one configurable delay element, as a fraction of the area
#: of one mat (512 x 512 cells at 6F^2 per cell).
AREA_OVERHEAD_PER_SIGNAL_FRACTION = 0.0028

#: Energy consumed by the delay element per CODIC command (femtojoules).
ENERGY_PER_COMMAND_FJ = 480.0

#: Reference energy of a full activation command (nanojoules), for comparison.
ACTIVATION_ENERGY_NJ = 17.0


@dataclass(frozen=True)
class DelayPathCost:
    """Aggregate cost of adding CODIC's configurable delay paths to a chip."""

    signals: int
    area_overhead_fraction: float
    energy_per_command_fj: float
    added_ddrx_delay_ns: float

    @property
    def area_overhead_percent(self) -> float:
        """Area overhead in percent of a mat."""
        return 100.0 * self.area_overhead_fraction

    @property
    def energy_relative_to_activation(self) -> float:
        """Delay-element energy as a fraction of one activation's energy."""
        return (self.energy_per_command_fj * 1e-6) / ACTIVATION_ENERGY_NJ


@dataclass
class ConfigurableDelayElement:
    """Behavioral model of one per-signal configurable delay element.

    The element delays its input edge by an integer number of buffer stages,
    selected by ``tap``; ``tap`` is exactly the value a CODIC mode register
    stores for the corresponding signal's assert (or de-assert) time.
    """

    signal: str
    tap: int = 0
    coarsening: int = 1

    def __post_init__(self) -> None:
        if self.signal not in CONTROL_SIGNALS:
            raise ValueError(f"unknown control signal {self.signal!r}")
        if not 0 <= self.tap <= BUFFER_STAGES:
            raise ValueError(
                f"tap must be within [0, {BUFFER_STAGES}], got {self.tap}"
            )
        if self.coarsening < 1:
            raise ValueError("coarsening must be >= 1")

    @property
    def delay_ns(self) -> float:
        """Delay applied to the signal edge, in nanoseconds."""
        return self.tap * BUFFER_STAGE_DELAY_NS

    @property
    def stage_count(self) -> int:
        """Number of physical buffer stages (reduced by coarsening)."""
        return max(1, BUFFER_STAGES // self.coarsening)

    def select(self, tap: int) -> "ConfigurableDelayElement":
        """Return a copy of this element configured for a different tap."""
        return ConfigurableDelayElement(
            signal=self.signal, tap=tap, coarsening=self.coarsening
        )

    def area_overhead_fraction(self) -> float:
        """Area overhead of this element as a fraction of one mat.

        Coarsening the time granularity reduces the number of buffer stages
        and the multiplexer fan-in proportionally (footnote 3 of the paper).
        """
        return AREA_OVERHEAD_PER_SIGNAL_FRACTION / self.coarsening


def total_cost(coarsening: int = 1) -> DelayPathCost:
    """Cost of instrumenting all four internal signals (Section 4.2.1)."""
    per_signal = AREA_OVERHEAD_PER_SIGNAL_FRACTION / coarsening
    return DelayPathCost(
        signals=len(CONTROL_SIGNALS),
        area_overhead_fraction=per_signal * len(CONTROL_SIGNALS),
        energy_per_command_fj=ENERGY_PER_COMMAND_FJ,
        added_ddrx_delay_ns=0.0,  # compensated by buffer sizing (Section 4.2.1)
    )
