"""The :class:`CODICSubstrate` facade.

The substrate ties together the variant library, the mode-register file, the
configurable delay elements and the circuit simulator.  It exposes the two
operations the rest of the library builds on:

* ``configure(variant)`` -- program the mode registers with a variant's
  signal schedule (issuing MRS commands, exactly as a memory controller
  would);
* ``execute(...)`` / ``simulate_cell(...)`` -- run the currently configured
  schedule, either against the behavioral circuit model of a single cell (for
  waveform-level studies) or against a row of a DRAM chip model (for
  application-level studies such as the PUF and self-destruction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.circuit.process_variation import ComponentVariation
from repro.circuit.simulator import CellCircuitSimulator, SimulationResult
from repro.core.delay_element import ConfigurableDelayElement, total_cost, DelayPathCost
from repro.core.mode_registers import ModeRegisterFile, MRSCommand
from repro.core.signals import CONTROL_SIGNALS, SignalSchedule
from repro.core.variants import (
    CODICVariant,
    VariantFunction,
    VariantLibrary,
    classify_schedule,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.dram.chip import DRAMChip


@dataclass
class CODICSubstrate:
    """Facade over the CODIC substrate of one DRAM chip.

    Parameters
    ----------
    register_sets:
        Number of independently programmable CODIC register sets.
    coarsening:
        Time-granularity coarsening factor of the delay elements (1 = 1 ns
        steps as in the paper; larger values trade control granularity for
        area, per footnote 3).
    """

    register_sets: int = 1
    coarsening: int = 1
    library: VariantLibrary = field(default_factory=VariantLibrary)
    registers: ModeRegisterFile = field(init=False)
    simulator: CellCircuitSimulator = field(default_factory=CellCircuitSimulator)

    def __post_init__(self) -> None:
        self.registers = ModeRegisterFile(register_sets=self.register_sets)

    # ------------------------------------------------------------------
    # Configuration path (memory controller -> MRS -> mode registers)
    # ------------------------------------------------------------------
    def configure(
        self, variant: CODICVariant | str, register_set: int = 0
    ) -> list[MRSCommand]:
        """Program a register set with a variant's signal schedule.

        Returns the MRS commands that a memory controller would issue, which
        is useful for accounting for configuration latency in end-to-end
        studies.
        """
        if isinstance(variant, str):
            variant = self.library.get(variant)
        return self.registers.program_schedule(variant.schedule, register_set)

    def configure_schedule(
        self, schedule: SignalSchedule, register_set: int = 0
    ) -> list[MRSCommand]:
        """Program a raw schedule (design-space exploration path)."""
        return self.registers.program_schedule(schedule, register_set)

    def configured_schedule(self, register_set: int = 0) -> SignalSchedule:
        """Schedule currently held in a register set."""
        return self.registers.read_schedule(register_set)

    def configured_function(self, register_set: int = 0) -> VariantFunction:
        """Functional classification of the currently configured schedule."""
        return classify_schedule(self.configured_schedule(register_set))

    def delay_elements(self, register_set: int = 0) -> dict[str, ConfigurableDelayElement]:
        """Delay elements as they would be configured for the current schedule."""
        schedule = self.configured_schedule(register_set)
        elements: dict[str, ConfigurableDelayElement] = {}
        for signal in CONTROL_SIGNALS:
            pulse = schedule.pulse(signal)
            tap = pulse.start_ns if pulse is not None else 0
            elements[signal] = ConfigurableDelayElement(
                signal=signal, tap=tap, coarsening=self.coarsening
            )
        return elements

    def hardware_cost(self) -> DelayPathCost:
        """Area/energy cost of the substrate (Section 4.2.1 numbers)."""
        return total_cost(coarsening=self.coarsening)

    # ------------------------------------------------------------------
    # Execution path
    # ------------------------------------------------------------------
    def simulate_cell(
        self,
        initial_cell_voltage: float,
        variation: ComponentVariation | None = None,
        temperature_c: float = 30.0,
        register_set: int = 0,
        record: bool = True,
    ) -> SimulationResult:
        """Run the configured schedule against the single-cell circuit model."""
        schedule = self.configured_schedule(register_set)
        return self.simulator.run(
            schedule.to_waveforms(),
            initial_cell_voltage=initial_cell_voltage,
            variation=variation,
            temperature_c=temperature_c,
            record=record,
        )

    def simulate_variant_on_cell(
        self,
        variant: CODICVariant | str,
        initial_cell_voltage: float,
        variation: ComponentVariation | None = None,
        temperature_c: float = 30.0,
        record: bool = True,
    ) -> SimulationResult:
        """Configure ``variant`` and immediately simulate it on one cell."""
        self.configure(variant)
        return self.simulate_cell(
            initial_cell_voltage,
            variation=variation,
            temperature_c=temperature_c,
            record=record,
        )

    def execute_on_chip(
        self,
        chip: "DRAMChip",
        bank: int,
        row: int,
        register_set: int = 0,
        temperature_c: float | None = None,
    ) -> None:
        """Execute the configured schedule against one row of a chip model.

        The chip model interprets the schedule by its functional class (the
        same classification the circuit model produces), which keeps row-level
        execution fast while staying consistent with the cell-level dynamics.
        """
        schedule = self.configured_schedule(register_set)
        chip.execute_codic(schedule, bank=bank, row=row, temperature_c=temperature_c)

    def variant_latency_ns(self, variant: CODICVariant | str) -> float:
        """Latency of a variant (Table 2 model), resolving names via the library."""
        if isinstance(variant, str):
            variant = self.library.get(variant)
        return variant.latency_ns
