"""The CODIC substrate: programmable control over DRAM internal circuit timings.

This package implements the paper's primary contribution:

* :mod:`repro.core.signals` -- the four internal control signals and the
  notion of a *signal schedule* (when each signal asserts and de-asserts
  within the 25 ns CODIC window, at 1 ns steps).
* :mod:`repro.core.variants` -- the library of CODIC command variants
  (CODIC-sig, CODIC-det, CODIC-sig-opt, CODIC-sigsa, and the variants that
  mimic regular activation/precharge), plus design-space enumeration
  (300 valid pulses per signal, 300^4 variants in total).
* :mod:`repro.core.delay_element` -- the configurable delay-element circuit
  (buffer chain + 25-to-1 multiplexer) and its area/energy/latency cost model.
* :mod:`repro.core.mode_registers` -- the 4 dedicated 10-bit mode registers
  that store a variant's signal timings, programmed via the standard MRS
  command.
* :mod:`repro.core.command` -- the CODIC DDRx command encoding.
* :mod:`repro.core.substrate` -- the :class:`CODICSubstrate` facade that ties
  the pieces together and executes variants against the circuit model or a
  DRAM chip model.
"""

from repro.core.signals import (
    CONTROL_SIGNALS,
    SIGNAL_STEP_NS,
    SIGNAL_WINDOW_NS,
    SignalPulse,
    SignalSchedule,
)
from repro.core.variants import (
    CODICVariant,
    VariantFunction,
    VariantLibrary,
    classify_schedule,
    count_pulses_per_signal,
    count_total_variants,
    estimate_latency_ns,
    standard_variants,
)
from repro.core.delay_element import ConfigurableDelayElement, DelayPathCost
from repro.core.mode_registers import ModeRegister, ModeRegisterFile, MRSCommand
from repro.core.command import CODICCommand, CODICCommandEncoder
from repro.core.substrate import CODICSubstrate

__all__ = [
    "CONTROL_SIGNALS",
    "SIGNAL_STEP_NS",
    "SIGNAL_WINDOW_NS",
    "SignalPulse",
    "SignalSchedule",
    "CODICVariant",
    "VariantFunction",
    "VariantLibrary",
    "classify_schedule",
    "count_pulses_per_signal",
    "count_total_variants",
    "estimate_latency_ns",
    "standard_variants",
    "ConfigurableDelayElement",
    "DelayPathCost",
    "ModeRegister",
    "ModeRegisterFile",
    "MRSCommand",
    "CODICCommand",
    "CODICCommandEncoder",
    "CODICSubstrate",
]
