"""CODIC command variants and design-space enumeration.

A *variant* is a named signal schedule with a functional interpretation.  The
paper's Table 1 defines the two standard commands (activation, precharge) and
the two headline CODIC variants (CODIC-sig and CODIC-det); Section 4.1.1 adds
CODIC-sig-opt and Appendix C adds CODIC-sigsa.  Table 2 reports the latency
and energy of five of them.

The module also implements the paper's design-space arithmetic: with a 25 ns
window and 1 ns steps there are 300 valid pulses per signal and 300^4 possible
variants, and provides a classifier that maps an arbitrary schedule to the
functional behaviour it produces (used for design-space exploration and for
the substrate's safety checks).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.signals import (
    CONTROL_SIGNALS,
    SIGNAL_WINDOW_NS,
    SignalPulse,
    SignalSchedule,
    iter_valid_pulses,
)

#: Latency (ns) of a command that performs a full activate-style operation
#: (charge sharing + amplification + restore), matching tRAS of DDR3-1600.
FULL_OPERATION_LATENCY_NS = 35.0

#: Latency (ns) of a command that only needs the precharge-style short window,
#: matching tRP of DDR3-1600.
SHORT_OPERATION_LATENCY_NS = 13.0

#: Schedules whose last internal signal de-asserts at or before this time can
#: complete within the short (precharge-class) command latency.
SHORT_OPERATION_THRESHOLD_NS = 13.0


class VariantFunction(enum.Enum):
    """Functional classes a CODIC signal schedule can fall into."""

    #: Regular activation semantics: read + restore of the addressed row.
    ACTIVATE = "activate"
    #: Regular precharge semantics: bitlines equalized, cells untouched.
    PRECHARGE = "precharge"
    #: Drives the cells of the row to Vdd/2; a subsequent activation resolves
    #: each cell by process variation (signature generation).
    SIGNATURE = "signature"
    #: Signature generation purely in the sense amplifier, without opening the
    #: cells first (Appendix C: CODIC-sigsa).
    SIGNATURE_SA = "signature_sa"
    #: Deterministically writes 0 into the row.
    DETERMINISTIC_ZERO = "deterministic_zero"
    #: Deterministically writes 1 into the row.
    DETERMINISTIC_ONE = "deterministic_one"
    #: The schedule drives no signal at all (a no-op).
    NOOP = "noop"
    #: Anything else: a potentially destructive or unclassified combination.
    OTHER = "other"

    @property
    def destroys_row_contents(self) -> bool:
        """Whether executing this function overwrites the row's stored data."""
        return self in {
            VariantFunction.SIGNATURE,
            VariantFunction.DETERMINISTIC_ZERO,
            VariantFunction.DETERMINISTIC_ONE,
            VariantFunction.OTHER,
        }


@dataclass(frozen=True)
class CODICVariant:
    """A named CODIC command variant."""

    name: str
    description: str
    schedule: SignalSchedule
    function: VariantFunction
    #: True when this variant needs a follow-up activation to produce readable
    #: values (CODIC-sig leaves cells at Vdd/2; the next ACT resolves them).
    requires_follow_up_activation: bool = False

    @property
    def latency_ns(self) -> float:
        """Command latency of this variant (Table 2 model)."""
        return estimate_latency_ns(self.schedule)

    def describe(self) -> str:
        """One-line Table-1-style description."""
        return f"{self.name}: {self.schedule.describe()}"


def estimate_latency_ns(schedule: SignalSchedule) -> float:
    """Latency model for a CODIC command (calibrated to the paper's Table 2).

    Commands whose internal signals all settle within the precharge-class
    window complete in ``tRP``-like time (13 ns); commands that keep signals
    asserted through the restore phase occupy the bank for a full
    ``tRAS``-like time (35 ns).  This reproduces Table 2: CODIC-activate,
    CODIC-sig and CODIC-det take 35 ns while CODIC-precharge and
    CODIC-sig-opt take 13 ns.
    """
    last = schedule.last_deassert_ns()
    if last == 0:
        return 0.0
    if last <= SHORT_OPERATION_THRESHOLD_NS:
        return SHORT_OPERATION_LATENCY_NS
    return FULL_OPERATION_LATENCY_NS


def classify_schedule(schedule: SignalSchedule) -> VariantFunction:
    """Classify an arbitrary signal schedule by the operation it performs.

    The classification follows the circuit reasoning of Section 4.1: the
    functionality is determined by *which* signals are driven and by the
    *relative order* in which they assert.
    """
    driven = set(schedule.driven_signals())
    if not driven:
        return VariantFunction.NOOP

    wl = schedule.pulse("wl")
    eq = schedule.pulse("EQ")
    sense_p = schedule.pulse("sense_p")
    sense_n = schedule.pulse("sense_n")

    # Pure precharge: only the equalization devices are exercised.
    if driven == {"EQ"}:
        return VariantFunction.PRECHARGE

    # Signature in the cells: the wordline opens the cells and the precharge
    # logic drives them to Vdd/2 (EQ asserted while wl is up, no sensing).
    if wl is not None and eq is not None and sense_p is None and sense_n is None:
        if eq.start_ns >= wl.start_ns:
            return VariantFunction.SIGNATURE
        return VariantFunction.OTHER

    # Signature in the sense amplifier only: both SA halves fire on a
    # precharged bitline; the wordline either stays closed or opens later to
    # optionally store the value (Appendix C).
    if sense_p is not None and sense_n is not None and eq is None:
        simultaneous = sense_p.start_ns == sense_n.start_ns
        if wl is None and simultaneous:
            return VariantFunction.SIGNATURE_SA
        if wl is not None and simultaneous and wl.start_ns > sense_p.start_ns:
            return VariantFunction.SIGNATURE_SA
        if wl is not None and simultaneous and wl.start_ns <= sense_p.start_ns:
            # Charge sharing happens first: this is a regular activation.
            return VariantFunction.ACTIVATE
        # The two SA halves fire at different times: deterministic value
        # generation (NMOS first -> 0, PMOS first -> 1).
        if wl is not None:
            if sense_n.start_ns < sense_p.start_ns:
                return VariantFunction.DETERMINISTIC_ZERO
            return VariantFunction.DETERMINISTIC_ONE
        return VariantFunction.OTHER

    return VariantFunction.OTHER


def standard_variants() -> dict[str, CODICVariant]:
    """The named variants defined by the paper (Tables 1 and 2, Appendix C)."""
    activation = SignalSchedule.from_timings(
        {"wl": (5, 22), "sense_p": (7, 22), "sense_n": (7, 22)}
    )
    precharge = SignalSchedule.from_timings({"EQ": (5, 11)})
    codic_sig = SignalSchedule.from_timings({"wl": (5, 22), "EQ": (7, 22)})
    codic_sig_opt = SignalSchedule.from_timings({"wl": (5, 11), "EQ": (7, 11)})
    codic_det_zero = SignalSchedule.from_timings(
        {"wl": (5, 22), "sense_p": (14, 22), "sense_n": (7, 22)}
    )
    codic_det_one = SignalSchedule.from_timings(
        {"wl": (5, 22), "sense_p": (7, 22), "sense_n": (14, 22)}
    )
    codic_sigsa = SignalSchedule.from_timings(
        {"wl": (5, 22), "sense_p": (3, 22), "sense_n": (3, 22)}
    )

    variants = [
        CODICVariant(
            name="CODIC-activate",
            description="Mimics the regular DDRx activation command.",
            schedule=activation,
            function=VariantFunction.ACTIVATE,
        ),
        CODICVariant(
            name="CODIC-precharge",
            description="Mimics the regular DDRx precharge command.",
            schedule=precharge,
            function=VariantFunction.PRECHARGE,
        ),
        CODICVariant(
            name="CODIC-sig",
            description=(
                "Drives the row's cells to Vdd/2 so that a subsequent "
                "activation resolves each cell by process variation "
                "(signature / PUF generation)."
            ),
            schedule=codic_sig,
            function=VariantFunction.SIGNATURE,
            requires_follow_up_activation=True,
        ),
        CODICVariant(
            name="CODIC-sig-opt",
            description=(
                "Latency-optimized CODIC-sig: the cell reaches Vdd/2 almost "
                "immediately after EQ asserts, so wl and EQ can terminate "
                "early (Section 4.1.1)."
            ),
            schedule=codic_sig_opt,
            function=VariantFunction.SIGNATURE,
            requires_follow_up_activation=True,
        ),
        CODICVariant(
            name="CODIC-det",
            description=(
                "Generates a deterministic 0 by asserting sense_n before "
                "sense_p (Section 4.1.2)."
            ),
            schedule=codic_det_zero,
            function=VariantFunction.DETERMINISTIC_ZERO,
        ),
        CODICVariant(
            name="CODIC-det-one",
            description=(
                "Generates a deterministic 1 by asserting sense_p before "
                "sense_n (Section 4.1.2)."
            ),
            schedule=codic_det_one,
            function=VariantFunction.DETERMINISTIC_ONE,
        ),
        CODICVariant(
            name="CODIC-sigsa",
            description=(
                "Generates a signature purely from sense-amplifier process "
                "variation by enabling both SA halves on a precharged bitline "
                "before raising the wordline (Appendix C)."
            ),
            schedule=codic_sigsa,
            function=VariantFunction.SIGNATURE_SA,
        ),
    ]
    return {variant.name: variant for variant in variants}


def count_pulses_per_signal(window_ns: float = SIGNAL_WINDOW_NS, step_ns: float = 1.0) -> int:
    """Number of valid (start, end) pulses for one signal.

    The paper's footnote 2: n = sum_{i=1}^{w-1} i = 300 for w = 25.
    """
    steps = int(window_ns / step_ns)
    return sum(range(1, steps))


def count_total_variants(window_ns: float = SIGNAL_WINDOW_NS, step_ns: float = 1.0) -> int:
    """Total number of CODIC variants: one pulse choice per signal, 300^4."""
    per_signal = count_pulses_per_signal(window_ns, step_ns)
    return per_signal ** len(CONTROL_SIGNALS)


def iter_variant_schedules(
    signals: tuple[str, ...] = CONTROL_SIGNALS,
    limit: int | None = None,
) -> Iterator[SignalSchedule]:
    """Iterate over variant schedules in the full design space.

    Each driven signal independently takes any of the 300 valid pulses.  The
    iteration order is deterministic; ``limit`` bounds the number of yielded
    schedules (the full space has 300^len(signals) entries, far too many to
    enumerate exhaustively for all four signals).
    """
    pulse_choices = list(iter_valid_pulses())
    count = 0
    for combination in itertools.product(pulse_choices, repeat=len(signals)):
        yield SignalSchedule(pulses=dict(zip(signals, combination)))
        count += 1
        if limit is not None and count >= limit:
            return


@dataclass
class VariantLibrary:
    """A registry of named CODIC variants.

    The library starts pre-populated with the paper's standard variants and
    accepts user-defined ones (e.g., latency-optimized activations discovered
    through design-space exploration).
    """

    _variants: dict[str, CODICVariant] = field(default_factory=standard_variants)

    def get(self, name: str) -> CODICVariant:
        """Look up a variant by name."""
        try:
            return self._variants[name]
        except KeyError:
            raise KeyError(
                f"unknown CODIC variant {name!r}; known variants: {sorted(self._variants)}"
            ) from None

    def register(self, variant: CODICVariant, replace: bool = False) -> None:
        """Add a variant to the library."""
        if variant.name in self._variants and not replace:
            raise ValueError(f"variant {variant.name!r} is already registered")
        self._variants[variant.name] = variant

    def names(self) -> list[str]:
        """All registered variant names (sorted)."""
        return sorted(self._variants)

    def __contains__(self, name: str) -> bool:
        return name in self._variants

    def __iter__(self) -> Iterator[CODICVariant]:
        return iter(self._variants.values())

    def __len__(self) -> int:
        return len(self._variants)

    def by_function(self, function: VariantFunction) -> list[CODICVariant]:
        """All variants implementing a given functional class."""
        return [v for v in self._variants.values() if v.function is function]

    def define(
        self,
        name: str,
        description: str,
        timings: dict[str, tuple[int, int] | None],
        replace: bool = False,
    ) -> CODICVariant:
        """Define, classify and register a new variant from raw timings."""
        schedule = SignalSchedule.from_timings(timings)
        variant = CODICVariant(
            name=name,
            description=description,
            schedule=schedule,
            function=classify_schedule(schedule),
            requires_follow_up_activation=(
                classify_schedule(schedule) is VariantFunction.SIGNATURE
            ),
        )
        self.register(variant, replace=replace)
        return variant
