"""Secure-deallocation performance and energy study (Figures 8 and 9).

The study runs each workload (or 4-core mix) under every zeroing mechanism on
the system simulator and reports speedup and DRAM energy savings normalized
to the software-zeroing baseline, exactly as the paper's figures do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.dealloc.mechanisms import MECHANISM_FACTORIES
from repro.dealloc.workloads import (
    ALLOC_INTENSIVE_BENCHMARKS,
    PAPER_MIXES,
    generate_mix,
    generate_trace,
)
from repro.memctrl.system import System, SystemConfig
from repro.memctrl.trace import WorkloadTrace

#: Mechanisms compared in Figures 8 and 9, in plotting order.
COMPARED_MECHANISMS: tuple[str, ...] = ("lisa", "rowclone", "codic")

#: The baseline every mechanism is normalized to.
BASELINE_MECHANISM = "software"


@dataclass(frozen=True)
class MechanismComparison:
    """Speedup and energy savings of one mechanism on one workload."""

    workload: str
    mechanism: str
    speedup: float
    energy_savings: float
    baseline_time_ns: float
    mechanism_time_ns: float

    @property
    def speedup_percent(self) -> float:
        """Speedup over software zeroing, in percent (Figure 8/9 y-axis)."""
        return 100.0 * (self.speedup - 1.0)

    @property
    def energy_savings_percent(self) -> float:
        """Energy savings over software zeroing, in percent."""
        return 100.0 * self.energy_savings


@dataclass
class WorkloadResult:
    """All mechanism comparisons for one workload."""

    workload: str
    comparisons: list[MechanismComparison] = field(default_factory=list)

    def comparison(self, mechanism: str) -> MechanismComparison:
        """Comparison entry of one mechanism."""
        for entry in self.comparisons:
            if entry.mechanism == mechanism:
                return entry
        raise KeyError(f"no comparison for mechanism {mechanism!r}")

    def best_mechanism(self) -> str:
        """Mechanism with the highest speedup on this workload."""
        return max(self.comparisons, key=lambda entry: entry.speedup).mechanism


@dataclass
class DeallocStudy:
    """Runs the secure-deallocation comparisons."""

    instructions: int = 120_000
    seed: int = 5
    system_config: SystemConfig = field(default_factory=SystemConfig)
    mechanisms: Sequence[str] = COMPARED_MECHANISMS

    # ------------------------------------------------------------------
    # Single workload / single core (Figure 8)
    # ------------------------------------------------------------------
    def run_workload(self, benchmark: str) -> WorkloadResult:
        """Compare all mechanisms against software zeroing on one benchmark."""
        trace = generate_trace(
            ALLOC_INTENSIVE_BENCHMARKS[benchmark],
            instructions=self.instructions,
            seed=self.seed,
        )
        return self._compare([trace], label=benchmark, cores=1)

    def run_figure8(self, benchmarks: Sequence[str] | None = None) -> list[WorkloadResult]:
        """The single-core study over the Table 8 benchmarks."""
        names = list(benchmarks) if benchmarks else sorted(ALLOC_INTENSIVE_BENCHMARKS)
        return [self.run_workload(name) for name in names]

    # ------------------------------------------------------------------
    # 4-core mixes (Figure 9)
    # ------------------------------------------------------------------
    def run_mix(self, mix_name: str, benchmarks: tuple[str, str, str, str]) -> WorkloadResult:
        """Compare all mechanisms on one 4-core mix."""
        traces = generate_mix(
            benchmarks, instructions_per_core=self.instructions, seed=self.seed
        )
        return self._compare(traces, label=mix_name, cores=4)

    def run_figure9(
        self, mixes: dict[str, tuple[str, str, str, str]] | None = None
    ) -> list[WorkloadResult]:
        """The 4-core study over the Table 9 mixes."""
        selected = mixes or PAPER_MIXES
        return [self.run_mix(name, benchmarks) for name, benchmarks in selected.items()]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _run_once(self, traces: list[WorkloadTrace], mechanism: str, cores: int):
        from dataclasses import replace

        config = replace(self.system_config, cores=cores)
        system = System(config=config)
        system.set_dealloc_handler(MECHANISM_FACTORIES[mechanism])
        stats = system.run(traces)
        return stats

    def _compare(self, traces: list[WorkloadTrace], label: str, cores: int) -> WorkloadResult:
        baseline = self._run_once(traces, BASELINE_MECHANISM, cores)
        result = WorkloadResult(workload=label)
        for mechanism in self.mechanisms:
            stats = self._run_once(traces, mechanism, cores)
            speedup = baseline.finish_time_ns / stats.finish_time_ns
            energy_savings = 1.0 - stats.dram_energy_nj / baseline.dram_energy_nj
            result.comparisons.append(
                MechanismComparison(
                    workload=label,
                    mechanism=mechanism,
                    speedup=speedup,
                    energy_savings=energy_savings,
                    baseline_time_ns=baseline.finish_time_ns,
                    mechanism_time_ns=stats.finish_time_ns,
                )
            )
        return result
