"""Secure-deallocation zeroing mechanisms.

Each mechanism is a dealloc handler for the in-order core model
(:class:`repro.memctrl.cpu.DeallocHandler`): when the traced program
deallocates a region, the handler zeroes it --

* **SoftwareZeroing**: the OS writes zeros through the cache hierarchy and
  flushes every line to DRAM (the paper's software baseline, per Chow et
  al.'s secure-deallocation proposal),
* **RowCloneZeroing / LISACloneZeroing**: the OS issues one in-DRAM
  row-copy command per row, copying a reserved all-zero row over the
  deallocated rows,
* **CODICZeroing**: the OS issues one CODIC-det command per row, generating
  the zeros inside the row itself (no source row, no data movement).

Hardware mechanisms only spend a few core cycles issuing each row operation;
the zeroing itself proceeds inside DRAM, overlapping with subsequent
execution but occupying banks (which the shared memory controller models).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.memctrl.cpu import InOrderCore
from repro.memctrl.request import RequestType
from repro.memctrl.trace import TraceEvent

#: Cache-line and DRAM-row sizes used to expand deallocated regions.
LINE_BYTES = 64
ROW_BYTES = 8192


def _region_lines(event: TraceEvent) -> range:
    """Byte addresses of every cache line in a deallocated region."""
    start = (event.address // LINE_BYTES) * LINE_BYTES
    end = event.address + event.size_bytes
    return range(start, end, LINE_BYTES)


def _region_rows(event: TraceEvent) -> range:
    """Byte addresses of every DRAM row touched by a deallocated region."""
    start = (event.address // ROW_BYTES) * ROW_BYTES
    end = event.address + event.size_bytes
    return range(start, end, ROW_BYTES)


@dataclass
class SoftwareZeroing:
    """Software baseline: store zeros to every line, then CLFLUSH it."""

    core: InOrderCore
    name: str = "software"

    def handle(self, core: InOrderCore, event: TraceEvent) -> None:
        """Zero the region with ordinary stores and cache flushes."""
        for address in _region_lines(event):
            core.do_store(address)
            core.do_flush(address)


@dataclass
class _RowGranularZeroing:
    """Shared implementation of the in-DRAM row-granular mechanisms."""

    core: InOrderCore
    request_type: RequestType = RequestType.CODIC_ZERO_ROW
    name: str = "codic"

    def handle(self, core: InOrderCore, event: TraceEvent) -> None:
        """Zero the region one DRAM row at a time, in-memory.

        Partial rows at the edges of the region cannot be zeroed at row
        granularity without destroying a neighbour's data, so they fall back
        to software zeroing (this is the row-granularity challenge Section
        4.4 discusses).
        """
        start = event.address
        end = event.address + event.size_bytes
        for row_address in _region_rows(event):
            row_end = row_address + ROW_BYTES
            if row_address >= start and row_end <= end:
                core.issue_row_op(self.request_type, row_address)
            else:
                partial_start = max(start, row_address)
                partial_end = min(end, row_end)
                for address in range(
                    (partial_start // LINE_BYTES) * LINE_BYTES, partial_end, LINE_BYTES
                ):
                    core.do_store(address)
                    core.do_flush(address)


@dataclass
class CODICZeroing(_RowGranularZeroing):
    """CODIC-det based zeroing: one CODIC command per row."""

    request_type: RequestType = RequestType.CODIC_ZERO_ROW
    name: str = "codic"


@dataclass
class RowCloneZeroing(_RowGranularZeroing):
    """RowClone-FPM based zeroing: copy a reserved zero row over each row."""

    request_type: RequestType = RequestType.ROWCLONE_ZERO_ROW
    name: str = "rowclone"


@dataclass
class LISACloneZeroing(_RowGranularZeroing):
    """LISA-clone based zeroing: inter-subarray copy of a zero row."""

    request_type: RequestType = RequestType.LISA_ZERO_ROW
    name: str = "lisa"


#: Factories keyed by the mechanism names used in Figures 8 and 9.
MECHANISM_FACTORIES: dict[str, Callable[[InOrderCore], object]] = {
    "software": lambda core: SoftwareZeroing(core),
    "lisa": lambda core: LISACloneZeroing(core),
    "rowclone": lambda core: RowCloneZeroing(core),
    "codic": lambda core: CODICZeroing(core),
}
