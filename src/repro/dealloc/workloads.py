"""Synthetic workload traces for the secure-deallocation study.

The paper drives Ramulator with Pin/Bochs traces of six allocation-intensive
programs (Table 8: mysql, memcached, gcc compilation, kernel boot-up, a shell
script and a malloc stress test) and mixes them with non-allocation-intensive
benchmarks (TPC-C/H, STREAM, SPEC2006, DynoGraph, HPCC RandomAccess) for the
4-core study (Table 9).

Since the original traces are not distributable, this module generates
synthetic traces with the properties that drive the result: the rate of
page deallocations relative to ordinary work, the size of deallocated
regions, the memory intensity and the locality of ordinary accesses.  The
profile parameters are chosen so that allocation-intensive workloads spend a
paper-consistent share of their time in deallocation-triggered zeroing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memctrl.trace import TraceEvent, TraceEventType, WorkloadTrace
from repro.utils.rng import make_rng

#: Page size used for deallocations (Linux base pages).
PAGE_BYTES = 4096

#: Cache-line size.
LINE_BYTES = 64


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical profile of one benchmark."""

    name: str
    #: Average non-memory instructions between memory accesses.
    compute_per_access: int = 30
    #: Probability that a memory access is a store.
    store_fraction: float = 0.3
    #: Working-set size in bytes (drives cache hit rates).
    working_set_bytes: int = 8 << 20
    #: Deallocation events per 10,000 instructions (0 = not alloc-intensive).
    deallocs_per_10k_instructions: float = 0.0
    #: Average number of pages released per deallocation.
    pages_per_dealloc: float = 4.0
    #: Fraction of accesses that hit a small hot region (temporal locality).
    hot_fraction: float = 0.6

    @property
    def is_alloc_intensive(self) -> bool:
        """Whether this profile models an allocation-intensive benchmark."""
        return self.deallocs_per_10k_instructions > 0.0


#: The six allocation-intensive benchmarks of Table 8.  Deallocation rates
#: are calibrated so that software zeroing accounts for a few percent up to
#: ~20 % of the baseline execution time, reproducing the speedup range of
#: the paper's Figure 8 (hardware mechanisms gain up to ~21 %).
ALLOC_INTENSIVE_BENCHMARKS: dict[str, WorkloadProfile] = {
    "mysql": WorkloadProfile(
        name="mysql", compute_per_access=25, store_fraction=0.35,
        working_set_bytes=24 << 20, deallocs_per_10k_instructions=0.40,
        pages_per_dealloc=2.0,
    ),
    "memcached": WorkloadProfile(
        name="memcached", compute_per_access=20, store_fraction=0.40,
        working_set_bytes=32 << 20, deallocs_per_10k_instructions=0.50,
        pages_per_dealloc=2.0,
    ),
    "compiler": WorkloadProfile(
        name="compiler", compute_per_access=35, store_fraction=0.30,
        working_set_bytes=16 << 20, deallocs_per_10k_instructions=0.35,
        pages_per_dealloc=2.0,
    ),
    "bootup": WorkloadProfile(
        name="bootup", compute_per_access=30, store_fraction=0.35,
        working_set_bytes=48 << 20, deallocs_per_10k_instructions=0.25,
        pages_per_dealloc=3.0,
    ),
    "shell": WorkloadProfile(
        name="shell", compute_per_access=40, store_fraction=0.25,
        working_set_bytes=8 << 20, deallocs_per_10k_instructions=0.25,
        pages_per_dealloc=2.0,
    ),
    "malloc": WorkloadProfile(
        name="malloc", compute_per_access=15, store_fraction=0.45,
        working_set_bytes=64 << 20, deallocs_per_10k_instructions=0.65,
        pages_per_dealloc=3.0,
    ),
}

#: Non-allocation-intensive background benchmarks used in the 4-core mixes.
BACKGROUND_BENCHMARKS: dict[str, WorkloadProfile] = {
    "tpcc64": WorkloadProfile(name="tpcc64", compute_per_access=25,
                              working_set_bytes=64 << 20, hot_fraction=0.5),
    "tpch": WorkloadProfile(name="tpch", compute_per_access=20,
                            working_set_bytes=64 << 20, hot_fraction=0.4),
    "stream": WorkloadProfile(name="stream", compute_per_access=8,
                              working_set_bytes=128 << 20, hot_fraction=0.05),
    "libquantum": WorkloadProfile(name="libquantum", compute_per_access=12,
                                  working_set_bytes=32 << 20, hot_fraction=0.2),
    "xalancbmk": WorkloadProfile(name="xalancbmk", compute_per_access=30,
                                 working_set_bytes=16 << 20, hot_fraction=0.7),
    "bzip2": WorkloadProfile(name="bzip2", compute_per_access=35,
                             working_set_bytes=8 << 20, hot_fraction=0.8),
    "lbm": WorkloadProfile(name="lbm", compute_per_access=10,
                           working_set_bytes=64 << 20, hot_fraction=0.1),
    "astar": WorkloadProfile(name="astar", compute_per_access=40,
                             working_set_bytes=16 << 20, hot_fraction=0.7),
    "condmat": WorkloadProfile(name="condmat", compute_per_access=28,
                               working_set_bytes=24 << 20, hot_fraction=0.5),
    "pagerank": WorkloadProfile(name="pagerank", compute_per_access=15,
                                working_set_bytes=96 << 20, hot_fraction=0.2),
    "bfs": WorkloadProfile(name="bfs", compute_per_access=18,
                           working_set_bytes=64 << 20, hot_fraction=0.25),
    "randomaccess": WorkloadProfile(name="randomaccess", compute_per_access=10,
                                    working_set_bytes=256 << 20, hot_fraction=0.0),
}

#: The five representative 4-core mixes of Table 9.
PAPER_MIXES: dict[str, tuple[str, str, str, str]] = {
    "MIX1": ("malloc", "bootup", "tpcc64", "libquantum"),
    "MIX2": ("shell", "bootup", "lbm", "xalancbmk"),
    "MIX3": ("bootup", "shell", "pagerank", "pagerank"),
    "MIX4": ("malloc", "shell", "xalancbmk", "bzip2"),
    "MIX5": ("malloc", "malloc", "astar", "condmat"),
}


def lookup_profile(name: str) -> WorkloadProfile:
    """Find a benchmark profile by name (allocation-intensive or background)."""
    if name in ALLOC_INTENSIVE_BENCHMARKS:
        return ALLOC_INTENSIVE_BENCHMARKS[name]
    if name in BACKGROUND_BENCHMARKS:
        return BACKGROUND_BENCHMARKS[name]
    raise KeyError(f"unknown benchmark {name!r}")


def generate_trace(
    profile: WorkloadProfile | str,
    instructions: int = 200_000,
    seed: int = 0,
    address_offset: int = 0,
) -> WorkloadTrace:
    """Generate one synthetic trace following a benchmark profile.

    ``address_offset`` places the workload's address space; multi-programmed
    mixes give each core a disjoint offset so they do not share data.
    """
    if isinstance(profile, str):
        profile = lookup_profile(profile)
    rng = make_rng(seed, "trace", profile.name, address_offset)
    trace = WorkloadTrace(name=profile.name)

    hot_bytes = max(LINE_BYTES * 64, profile.working_set_bytes // 16)
    executed = 0
    dealloc_interval = (
        int(10_000 / profile.deallocs_per_10k_instructions)
        if profile.is_alloc_intensive
        else None
    )
    next_dealloc = dealloc_interval if dealloc_interval else None
    # Deallocations walk through the working set sequentially, page by page,
    # the way an allocator returns regions to the OS.
    dealloc_cursor = 0

    while executed < instructions:
        compute = max(1, int(rng.poisson(profile.compute_per_access)))
        trace.append(TraceEvent(TraceEventType.COMPUTE, count=compute))
        executed += compute

        in_hot_region = rng.random() < profile.hot_fraction
        region = hot_bytes if in_hot_region else profile.working_set_bytes
        address = address_offset + int(rng.integers(0, max(region // LINE_BYTES, 1))) * LINE_BYTES
        is_store = rng.random() < profile.store_fraction
        trace.append(
            TraceEvent(
                TraceEventType.STORE if is_store else TraceEventType.LOAD,
                address=address,
            )
        )
        executed += 1

        if next_dealloc is not None and executed >= next_dealloc:
            pages = max(1, int(rng.poisson(profile.pages_per_dealloc)))
            # The OS returns buddy-allocator blocks, so freed regions are
            # naturally aligned contiguous page runs; align them to DRAM row
            # boundaries (2 pages), which is also what lets the row-granular
            # mechanisms zero them without touching neighbouring data.
            start = address_offset + (dealloc_cursor % profile.working_set_bytes)
            start = (start // (2 * PAGE_BYTES)) * (2 * PAGE_BYTES)
            pages = max(2, pages + (pages % 2))
            trace.append(
                TraceEvent(
                    TraceEventType.DEALLOC,
                    address=start,
                    size_bytes=pages * PAGE_BYTES,
                )
            )
            dealloc_cursor += pages * PAGE_BYTES
            executed += 1
            next_dealloc += dealloc_interval

    return trace


def generate_mix(
    benchmarks: tuple[str, str, str, str],
    instructions_per_core: int = 100_000,
    seed: int = 0,
    address_stride: int = 256 << 20,
) -> list[WorkloadTrace]:
    """Generate the four per-core traces of one 4-core mix."""
    traces = []
    for core, name in enumerate(benchmarks):
        traces.append(
            generate_trace(
                lookup_profile(name),
                instructions=instructions_per_core,
                seed=seed + core,
                address_offset=core * address_stride,
            )
        )
    return traces


def random_mixes(
    count: int = 50, seed: int = 11
) -> dict[str, tuple[str, str, str, str]]:
    """Random 4-core mixes in the paper's style.

    Each mix combines two allocation-intensive and two non-allocation-
    intensive benchmarks, matching the methodology of Appendix A.
    """
    rng = make_rng(seed, "mixes")
    alloc_names = sorted(ALLOC_INTENSIVE_BENCHMARKS)
    background_names = sorted(BACKGROUND_BENCHMARKS)
    mixes: dict[str, tuple[str, str, str, str]] = {}
    for index in range(count):
        alloc = [alloc_names[int(i)] for i in rng.integers(0, len(alloc_names), 2)]
        background = [
            background_names[int(i)] for i in rng.integers(0, len(background_names), 2)
        ]
        mixes[f"RMIX{index + 1}"] = (alloc[0], alloc[1], background[0], background[1])
    return mixes
