"""Secure deallocation (paper Appendix A).

Secure deallocation zeroes memory at the moment it is deallocated, shrinking
the window in which stale sensitive data can leak.  The paper compares a
software implementation (the OS writes zeros and flushes them to DRAM)
against three hardware mechanisms that zero whole DRAM rows in-memory:
LISA-clone, RowClone and CODIC-det.

This package provides:

* :mod:`repro.dealloc.workloads`  -- synthetic trace generators for the six
  allocation-intensive benchmarks of Table 8, the non-allocation-intensive
  background benchmarks, and the 4-core mixes of Table 9,
* :mod:`repro.dealloc.mechanisms` -- the four zeroing mechanisms as
  dealloc handlers for the in-order core model,
* :mod:`repro.dealloc.simulation` -- the single-core (Figure 8) and 4-core
  (Figure 9) speedup / energy-savings studies.
"""

from repro.dealloc.workloads import (
    ALLOC_INTENSIVE_BENCHMARKS,
    BACKGROUND_BENCHMARKS,
    PAPER_MIXES,
    WorkloadProfile,
    generate_trace,
    generate_mix,
    random_mixes,
)
from repro.dealloc.mechanisms import (
    SoftwareZeroing,
    CODICZeroing,
    RowCloneZeroing,
    LISACloneZeroing,
    MECHANISM_FACTORIES,
)
from repro.dealloc.simulation import (
    DeallocStudy,
    MechanismComparison,
    WorkloadResult,
)

__all__ = [
    "ALLOC_INTENSIVE_BENCHMARKS",
    "BACKGROUND_BENCHMARKS",
    "PAPER_MIXES",
    "WorkloadProfile",
    "generate_trace",
    "generate_mix",
    "random_mixes",
    "SoftwareZeroing",
    "CODICZeroing",
    "RowCloneZeroing",
    "LISACloneZeroing",
    "MECHANISM_FACTORIES",
    "DeallocStudy",
    "MechanismComparison",
    "WorkloadResult",
]
