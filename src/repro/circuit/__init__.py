"""Behavioral analog model of the DRAM cell / bitline / sense-amplifier circuit.

The paper validates CODIC variants with SPICE simulations of the sense
amplifier from Keeth's textbook design using 22 nm PTM transistor models.
This package substitutes a time-stepped *behavioral* model that reproduces the
state trajectories those simulations are used for:

* precharge of the bitline pair to ``Vdd/2`` via the EQ signal,
* charge sharing between the cell capacitor and the bitline when the wordline
  is raised,
* regenerative amplification by the cross-coupled sense amplifier when
  ``sense_n`` / ``sense_p`` are asserted, including the functional asymmetries
  the paper relies on (NMOS-first resolves to 0, PMOS-first resolves to 1,
  simultaneous assertion resolves by the developed differential plus the
  process-variation-dependent SA offset),
* restore of the cell through the open access transistor.

Voltages are normalized so that ``Vdd == 1.0`` and the precharge level is
``0.5``.  Time is in nanoseconds.
"""

from repro.circuit.process_variation import (
    ComponentVariation,
    VariationModel,
    VariationParameters,
)
from repro.circuit.components import (
    Bitline,
    CellCapacitor,
    PrechargeUnit,
    CircuitConstants,
)
from repro.circuit.sense_amplifier import SenseAmplifier
from repro.circuit.cell import DRAMCell
from repro.circuit.waveform import ControlWaveforms, Waveform, WaveformSet
from repro.circuit.simulator import CellCircuitSimulator, SimulationResult
from repro.circuit.montecarlo import MonteCarloEngine, MonteCarloResult

__all__ = [
    "ComponentVariation",
    "VariationModel",
    "VariationParameters",
    "CircuitConstants",
    "CellCapacitor",
    "Bitline",
    "PrechargeUnit",
    "SenseAmplifier",
    "DRAMCell",
    "Waveform",
    "WaveformSet",
    "ControlWaveforms",
    "CellCircuitSimulator",
    "SimulationResult",
    "MonteCarloEngine",
    "MonteCarloResult",
]
