"""Passive circuit components of the cell / bitline / precharge path.

The components hold *state* (a voltage) and expose small update rules used by
:class:`repro.circuit.simulator.CellCircuitSimulator`.  All voltages are
normalized to ``Vdd = 1.0``; all times are nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.process_variation import ComponentVariation


@dataclass(frozen=True)
class CircuitConstants:
    """Electrical constants of the behavioral model.

    The absolute values are representative of a modern DDR3 device (see Keeth,
    "DRAM Circuit Design"); only their ratios and time constants influence the
    behavioral results.
    """

    #: Supply voltage (normalized).
    vdd: float = 1.0
    #: Precharge voltage (normalized), Vdd/2.
    vpre: float = 0.5
    #: Ratio of bitline capacitance to cell capacitance (typically 5-8).
    bitline_to_cell_cap_ratio: float = 6.0
    #: Time constant of the precharge/equalization path, ns.
    precharge_tau_ns: float = 0.8
    #: Time constant of charge sharing through the access transistor, ns.
    charge_sharing_tau_ns: float = 1.2
    #: Time constant of regenerative SA amplification, ns.
    sense_tau_ns: float = 1.5
    #: Time constant of the single-sided pull when only one SA half is on, ns.
    half_sense_tau_ns: float = 2.5
    #: Structural speed advantage of the bitline node over the reference node
    #: when a single SA half is enabled.  This encodes the paper's observation
    #: that triggering sense_n alone deviates the *bitline* towards 0 (and
    #: sense_p alone towards 1), which is what makes CODIC-det deterministic.
    single_sided_asymmetry: float = 2.0
    #: Simulation time step, ns.
    dt_ns: float = 0.05
    #: Cell leakage time constant at nominal temperature, seconds.  Real DRAM
    #: cells retain data for seconds to minutes; the value only matters for
    #: the retention-based emulation methodology (Section 6.1).
    leakage_tau_s: float = 64.0

    @property
    def cell_cap_weight(self) -> float:
        """Relative weight of the cell capacitance in charge sharing."""
        return 1.0 / (1.0 + self.bitline_to_cell_cap_ratio)

    @property
    def bitline_cap_weight(self) -> float:
        """Relative weight of the bitline capacitance in charge sharing."""
        return self.bitline_to_cell_cap_ratio / (1.0 + self.bitline_to_cell_cap_ratio)


@dataclass
class CellCapacitor:
    """The storage capacitor of one DRAM cell."""

    voltage: float
    cap_factor: float = 1.0

    def share_charge(
        self,
        bitline: "Bitline",
        constants: CircuitConstants,
        wl_drive_factor: float,
        dt_ns: float,
    ) -> None:
        """Exchange charge with ``bitline`` through the open access transistor.

        The current through the access transistor is proportional to the
        voltage difference; the per-node voltage change is inversely
        proportional to that node's capacitance (so the small cell capacitor
        moves much faster than the large bitline).
        """
        conductance = wl_drive_factor / constants.charge_sharing_tau_ns
        flow = (self.voltage - bitline.voltage) * conductance * dt_ns
        cell_cap = self.cap_factor
        bitline_cap = constants.bitline_to_cell_cap_ratio * bitline.cap_factor
        self.voltage -= flow / cell_cap
        bitline.voltage += flow / bitline_cap

    def leak(self, dt_s: float, constants: CircuitConstants, leakage_factor: float,
             temperature_c: float = 30.0) -> None:
        """Leak charge towards the precharge level over ``dt_s`` seconds.

        Retention time roughly halves for every 10 C increase in temperature
        (the paper's retention-based CODIC-sig emulation exploits exactly this
        leakage towards Vdd/2).
        """
        acceleration = 2.0 ** ((temperature_c - 30.0) / 10.0)
        tau = constants.leakage_tau_s / (leakage_factor * acceleration)
        decay = 1.0 - pow(2.718281828459045, -dt_s / max(tau, 1e-9))
        self.voltage += (constants.vpre - self.voltage) * decay


@dataclass
class Bitline:
    """One bitline (the side connected to the accessed cell)."""

    voltage: float
    cap_factor: float = 1.0

    def precharge(self, constants: CircuitConstants, dt_ns: float) -> None:
        """Drive the bitline towards Vdd/2 through the equalization devices."""
        rate = dt_ns / constants.precharge_tau_ns
        self.voltage += (constants.vpre - self.voltage) * min(rate, 1.0)


@dataclass
class PrechargeUnit:
    """The equalization circuit controlled by the EQ signal.

    It simultaneously drives the bitline and the reference bitline towards the
    precharge voltage.  The unit itself is stateless; it simply applies the
    precharge update to both nodes when enabled.
    """

    def apply(
        self,
        bitline: Bitline,
        reference: Bitline,
        constants: CircuitConstants,
        dt_ns: float,
    ) -> None:
        """Equalize both bitlines towards Vdd/2 for one time step."""
        bitline.precharge(constants, dt_ns)
        reference.precharge(constants, dt_ns)
        # Equalization also shorts the two bitlines together, pulling them
        # towards their common average.
        average = 0.5 * (bitline.voltage + reference.voltage)
        rate = min(dt_ns / constants.precharge_tau_ns, 1.0)
        bitline.voltage += (average - bitline.voltage) * rate
        reference.voltage += (average - reference.voltage) * rate


def make_components(
    initial_cell_voltage: float,
    variation: ComponentVariation,
    constants: CircuitConstants,
) -> tuple[CellCapacitor, Bitline, Bitline, PrechargeUnit]:
    """Build the component set for one simulated cell access.

    Returns the cell capacitor, the bitline, the reference (complementary)
    bitline and the precharge unit, all initialized to their idle state
    (bitlines precharged, cell holding ``initial_cell_voltage``).
    """
    cell = CellCapacitor(voltage=initial_cell_voltage, cap_factor=variation.cell_cap_factor)
    bitline = Bitline(voltage=constants.vpre, cap_factor=variation.bitline_cap_factor)
    reference = Bitline(voltage=constants.vpre, cap_factor=1.0)
    return cell, bitline, reference, PrechargeUnit()
