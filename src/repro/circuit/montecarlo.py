"""Monte Carlo engine for process-variation sweeps (paper Table 11).

The paper evaluates CODIC-sigsa by running 100,000 SPICE Monte Carlo samples
per process-variation level and counting how many sense amplifiers resolve a
perfectly precharged bitline to '0' instead of the nominal '1'.  This module
reproduces that experiment with the behavioral model.

Two execution paths are provided:

* a *vectorized* path that uses the closed-form resolution rule of the SA
  (sign of the effective offset) -- this is what the table-scale sweeps use;
* a *full-simulation* path that runs the time-stepped circuit simulator for a
  subset of samples, used by the tests to check that both paths agree.

The vectorized path draws its offsets in fixed canonical *blocks* of
:data:`MC_SAMPLE_BLOCK` samples.  Block ``b`` of a sweep point always uses
the stream ``point_seed(...).spawn()[b]`` (addressed directly via its spawn
key), and a sample's flip decision depends only on its absolute index -- so
any partition of the sample range into shards, executed on any workers in
any order, merges to exactly the serial result.  This is what lets
``repro.engine`` split one 100,000-sample Table 11 point across a process
pool (and cache the shards individually) without changing a single bit of
the output.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.circuit.components import CircuitConstants
from repro.circuit.process_variation import (
    NOMINAL_TEMPERATURE_C,
    STRUCTURAL_SA_OFFSET,
    THERMAL_OFFSET_SIGMA_PER_DEGREE,
    VariationModel,
    VariationParameters,
    ComponentVariation,
)
from repro.circuit.simulator import CellCircuitSimulator
from repro.circuit.waveform import ControlWaveforms


def _float_entropy(value: float) -> int:
    """Lossless integer encoding of a float for ``SeedSequence`` entropy."""
    return int.from_bytes(struct.pack("<d", float(value)), "little")


#: Samples per canonical RNG block of the vectorized Monte Carlo path.  Each
#: block owns an independent ``SeedSequence`` spawn child of the point seed,
#: which makes flip counts independent of how a sample range is partitioned
#: into shards.  Changing this constant changes the sampled offsets (it is
#: part of the deterministic scheme, like the seed itself).
MC_SAMPLE_BLOCK = 8192


@dataclass(frozen=True)
class MonteCarloResult:
    """Result of one Monte Carlo sweep point."""

    variation_percent: float
    temperature_c: float
    samples: int
    bit_flips: int

    @property
    def flip_rate(self) -> float:
        """Fraction of samples that flipped away from the nominal value."""
        return self.bit_flips / self.samples if self.samples else 0.0

    @property
    def flip_percent(self) -> float:
        """Flip rate expressed in percent, as reported in Table 11."""
        return 100.0 * self.flip_rate


@dataclass
class MonteCarloEngine:
    """Runs SA-offset Monte Carlo sweeps for CODIC-sigsa-style commands."""

    seed: int = 12345
    samples: int = 100_000
    constants: CircuitConstants = field(default_factory=CircuitConstants)

    def sweep_variation(
        self,
        variation_percents: list[float],
        temperature_c: float = NOMINAL_TEMPERATURE_C,
    ) -> list[MonteCarloResult]:
        """Flip rates across process-variation levels at a fixed temperature."""
        return [
            self.run_point(percent, temperature_c) for percent in variation_percents
        ]

    def sweep_temperature(
        self,
        temperatures_c: list[float],
        variation_percent: float = 4.0,
    ) -> list[MonteCarloResult]:
        """Flip rates across temperatures at a fixed process-variation level."""
        return [
            self.run_point(variation_percent, temperature)
            for temperature in temperatures_c
        ]

    def point_seed(
        self, variation_percent: float, temperature_c: float
    ) -> np.random.SeedSequence:
        """Collision-free seed for one sweep point.

        The sweep coordinates enter the entropy tuple as their exact IEEE-754
        bit patterns, so distinct points (including fractional temperatures)
        never share a stream and per-point jobs can run on any worker while
        remaining bit-identical to the serial sweep.
        """
        return np.random.SeedSequence(
            entropy=(
                self.seed,
                _float_entropy(variation_percent),
                _float_entropy(temperature_c),
            )
        )

    def block_seed(
        self, variation_percent: float, temperature_c: float, block: int
    ) -> np.random.SeedSequence:
        """Stream of canonical block ``block`` of one sweep point.

        Addressed directly by spawn key: this is the ``block``-th child that
        ``point_seed(...).spawn(...)`` would produce, without the stateful
        spawn counter, so shards can materialize any block independently.
        """
        return np.random.SeedSequence(
            entropy=self.point_seed(variation_percent, temperature_c).entropy,
            spawn_key=(block,),
        )

    def shard_flips(
        self, variation_percent: float, temperature_c: float, start: int, stop: int
    ) -> int:
        """Bit flips among samples ``[start, stop)`` of one sweep point.

        A sample flips when its effective SA offset (static mismatch plus
        thermal drift) is negative, i.e. the SA resolves the precharged
        bitline to 0 instead of the structural default of 1.  Each sample's
        offset comes from its canonical block stream, so
        ``shard_flips(v, t, 0, n) == sum(shard_flips over any partition of
        [0, n))`` -- bit-for-bit, for any shard boundaries.
        """
        if not 0 <= start <= stop:
            raise ValueError(f"invalid sample range [{start}, {stop})")
        if start == stop:
            return 0
        parameters = VariationParameters(variation_percent=variation_percent)
        delta_t = abs(temperature_c - NOMINAL_TEMPERATURE_C)
        thermal_sigma = THERMAL_OFFSET_SIGMA_PER_DEGREE * delta_t
        flips = 0
        first_block = start // MC_SAMPLE_BLOCK
        last_block = (stop - 1) // MC_SAMPLE_BLOCK
        for block in range(first_block, last_block + 1):
            base = block * MC_SAMPLE_BLOCK
            rng = np.random.default_rng(
                self.block_seed(variation_percent, temperature_c, block)
            )
            # Always draw the full block so a sample's offset depends only on
            # its absolute index, never on the shard boundaries around it.
            offsets = STRUCTURAL_SA_OFFSET + rng.normal(
                0.0, parameters.sa_offset_sigma, size=MC_SAMPLE_BLOCK
            )
            if delta_t > 0:
                offsets = offsets + rng.normal(
                    0.0, thermal_sigma, size=MC_SAMPLE_BLOCK
                )
            lo = max(start - base, 0)
            hi = min(stop - base, MC_SAMPLE_BLOCK)
            flips += int(np.count_nonzero(offsets[lo:hi] < 0.0))
        return flips

    def run_point(
        self, variation_percent: float, temperature_c: float
    ) -> MonteCarloResult:
        """Vectorized Monte Carlo at one (variation, temperature) point.

        Runs the canonical block scheme over the full sample range, so the
        result is identical to merging :meth:`shard_flips` over any
        partition of ``[0, samples)``.
        """
        flips = self.shard_flips(variation_percent, temperature_c, 0, self.samples)
        return MonteCarloResult(
            variation_percent=variation_percent,
            temperature_c=temperature_c,
            samples=self.samples,
            bit_flips=flips,
        )

    def run_point_full_simulation(
        self,
        variation_percent: float,
        temperature_c: float,
        waveforms: ControlWaveforms,
        samples: int = 200,
    ) -> MonteCarloResult:
        """Slow path: run the full circuit simulator for each sample.

        Used by tests to verify that the vectorized shortcut agrees with the
        time-stepped dynamics for the CODIC-sigsa waveform.
        """
        rng = np.random.default_rng(self.seed)
        model = VariationModel(
            parameters=VariationParameters(variation_percent=variation_percent),
            rng=rng,
        )
        simulator = CellCircuitSimulator(constants=self.constants)
        flips = 0
        for _ in range(samples):
            variation = model.sample()
            result = simulator.run(
                waveforms,
                initial_cell_voltage=self.constants.vpre,
                variation=variation,
                temperature_c=temperature_c,
                record=False,
            )
            if result.final_bitline_value == 0:
                flips += 1
        return MonteCarloResult(
            variation_percent=variation_percent,
            temperature_c=temperature_c,
            samples=samples,
            bit_flips=flips,
        )

    def sample_variations(
        self, variation_percent: float, count: int
    ) -> list[ComponentVariation]:
        """Draw ``count`` full component-variation samples (helper for tests)."""
        model = VariationModel(
            parameters=VariationParameters(variation_percent=variation_percent),
            rng=np.random.default_rng(self.seed),
        )
        return model.sample_many(count)
