"""A single DRAM cell: capacitor + access transistor + its variation sample."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.components import CircuitConstants
from repro.circuit.process_variation import ComponentVariation


@dataclass
class DRAMCell:
    """Logical state of one DRAM cell.

    The cell stores an analog voltage in ``[0, Vdd]``; the digital value it
    represents is obtained by comparing against ``Vdd/2``.  The cell also
    carries its process-variation sample, which is what makes two cells on two
    different chips behave differently under CODIC-sig.
    """

    variation: ComponentVariation = field(default_factory=ComponentVariation)
    voltage: float = 0.0
    constants: CircuitConstants = field(default_factory=CircuitConstants)

    def write(self, value: int) -> None:
        """Write a full digital value (0 or 1) into the cell."""
        if value not in (0, 1):
            raise ValueError(f"cell value must be 0 or 1, got {value!r}")
        self.voltage = self.constants.vdd if value else 0.0

    def read_value(self) -> int:
        """Digital interpretation of the stored analog voltage."""
        return 1 if self.voltage >= self.constants.vpre else 0

    def is_near_precharge(self, tolerance: float = 0.05) -> bool:
        """True when the cell voltage sits within ``tolerance`` of Vdd/2."""
        return abs(self.voltage - self.constants.vpre) <= tolerance

    def decay(self, seconds: float, temperature_c: float = 30.0) -> None:
        """Leak the cell voltage towards Vdd/2 over ``seconds``.

        This implements the retention behaviour the paper exploits in its
        real-chip emulation methodology: without refresh, cells drift towards
        the precharge voltage, faster at higher temperature and for leakier
        cells.
        """
        acceleration = 2.0 ** ((temperature_c - 30.0) / 10.0)
        tau = self.constants.leakage_tau_s / (
            self.variation.leakage_factor * acceleration
        )
        import math

        decay = 1.0 - math.exp(-seconds / max(tau, 1e-9))
        self.voltage += (self.constants.vpre - self.voltage) * decay
