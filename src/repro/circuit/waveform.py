"""Waveform containers: control-signal drive waveforms and recorded traces.

``ControlWaveforms`` is the interface between the CODIC substrate (which
describes *when* each internal signal toggles) and the circuit simulator
(which needs to know each signal's level at an arbitrary time).  ``Waveform``
and ``WaveformSet`` hold the recorded analog traces that reproduce the
paper's Figures 2b, 3a, 3b and 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

#: Names of the four internal DRAM signals CODIC controls.
CONTROL_SIGNALS = ("wl", "EQ", "sense_p", "sense_n")


@dataclass(frozen=True)
class ControlWaveforms:
    """Digital drive waveforms for the four internal control signals.

    Each signal is described by a sorted tuple of ``(time_ns, level)``
    transitions; the signal holds its last level after the final transition
    and its initial level (0) before the first one.
    """

    transitions: Mapping[str, tuple[tuple[float, int], ...]]
    window_ns: float = 25.0

    @classmethod
    def from_pulses(
        cls,
        pulses: Mapping[str, tuple[float, float] | None],
        window_ns: float = 25.0,
    ) -> "ControlWaveforms":
        """Build waveforms from ``signal -> (assert_time, deassert_time)`` pulses.

        Signals mapped to ``None`` (or absent) stay de-asserted for the whole
        window, matching the paper's Table 1 notation where a command simply
        does not touch some signals.
        """
        transitions: dict[str, tuple[tuple[float, int], ...]] = {}
        for signal in CONTROL_SIGNALS:
            pulse = pulses.get(signal)
            if pulse is None:
                transitions[signal] = ()
                continue
            start, end = pulse
            if not 0.0 <= start < end:
                raise ValueError(
                    f"signal {signal!r} pulse must satisfy 0 <= start < end, "
                    f"got ({start}, {end})"
                )
            if end > window_ns:
                raise ValueError(
                    f"signal {signal!r} pulse end {end} exceeds window {window_ns}"
                )
            transitions[signal] = ((float(start), 1), (float(end), 0))
        return cls(transitions=transitions, window_ns=window_ns)

    def level(self, signal: str, time_ns: float) -> int:
        """Level (0/1) of ``signal`` at ``time_ns``."""
        if signal not in self.transitions:
            raise KeyError(f"unknown control signal {signal!r}")
        level = 0
        for transition_time, transition_level in self.transitions[signal]:
            if time_ns >= transition_time:
                level = transition_level
            else:
                break
        return level

    def active_signals(self) -> tuple[str, ...]:
        """Signals that are asserted at least once during the window."""
        return tuple(
            signal
            for signal in CONTROL_SIGNALS
            if any(level == 1 for _, level in self.transitions.get(signal, ()))
        )

    def last_deassert_time(self) -> float:
        """Time of the final transition across all signals (command latency proxy)."""
        last = 0.0
        for signal_transitions in self.transitions.values():
            for transition_time, _ in signal_transitions:
                last = max(last, transition_time)
        return last


@dataclass
class Waveform:
    """A recorded analog trace: a named sequence of (time, value) samples."""

    name: str
    times_ns: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, time_ns: float, value: float) -> None:
        """Record one sample."""
        self.times_ns.append(time_ns)
        self.values.append(value)

    def value_at(self, time_ns: float) -> float:
        """Value of the most recent sample at or before ``time_ns``."""
        if not self.times_ns:
            raise ValueError(f"waveform {self.name!r} has no samples")
        best = self.values[0]
        for t, v in zip(self.times_ns, self.values):
            if t <= time_ns:
                best = v
            else:
                break
        return best

    def final_value(self) -> float:
        """Value of the last recorded sample."""
        if not self.values:
            raise ValueError(f"waveform {self.name!r} has no samples")
        return self.values[-1]

    def crossing_time(self, threshold: float, rising: bool = True) -> float | None:
        """First time the trace crosses ``threshold`` in the given direction."""
        previous = None
        for t, v in zip(self.times_ns, self.values):
            if previous is not None:
                if rising and previous < threshold <= v:
                    return t
                if not rising and previous > threshold >= v:
                    return t
            previous = v
        return None


@dataclass
class WaveformSet:
    """A collection of named waveforms recorded during one simulation."""

    waveforms: dict[str, Waveform] = field(default_factory=dict)

    def track(self, names: Iterable[str]) -> None:
        """Start tracking the given trace names."""
        for name in names:
            self.waveforms.setdefault(name, Waveform(name=name))

    def record(self, time_ns: float, samples: Mapping[str, float]) -> None:
        """Record one sample per tracked trace."""
        for name, value in samples.items():
            self.waveforms.setdefault(name, Waveform(name=name)).append(time_ns, value)

    def __getitem__(self, name: str) -> Waveform:
        return self.waveforms[name]

    def __contains__(self, name: str) -> bool:
        return name in self.waveforms

    def names(self) -> Sequence[str]:
        """Names of all recorded traces."""
        return tuple(self.waveforms)
