"""Time-stepped simulation of one DRAM cell access under arbitrary signal timings.

This is the behavioral replacement for the paper's SPICE simulations: given
the drive waveforms of the four internal signals (``wl``, ``EQ``, ``sense_p``,
``sense_n``), it integrates the cell / bitline / sense-amplifier dynamics over
the CODIC time window and reports the resulting cell and bitline values along
with full analog traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.cell import DRAMCell
from repro.circuit.components import (
    Bitline,
    CellCapacitor,
    CircuitConstants,
    PrechargeUnit,
)
from repro.circuit.process_variation import ComponentVariation
from repro.circuit.sense_amplifier import SenseAmplifier
from repro.circuit.waveform import ControlWaveforms, WaveformSet


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one command on one cell."""

    #: Final analog voltage of the cell capacitor.
    final_cell_voltage: float
    #: Final analog voltage of the bitline.
    final_bitline_voltage: float
    #: Digital value of the cell at the end of the window (vs. Vdd/2).
    final_cell_value: int
    #: Digital value latched on the bitline at the end of the window.
    final_bitline_value: int
    #: True when the cell ended within 5 % of the precharge voltage, which is
    #: the CODIC-sig post-condition.
    cell_at_precharge: bool
    #: Time at which the bitline reached 90 % of a full rail excursion, or
    #: ``None`` if it never did (e.g., a pure precharge command).
    amplification_complete_ns: float | None
    #: Recorded analog and digital traces.
    waveforms: WaveformSet
    #: Total simulated time window.
    window_ns: float


@dataclass
class CellCircuitSimulator:
    """Simulates one cell + bitline pair + SA under given control waveforms."""

    constants: CircuitConstants = field(default_factory=CircuitConstants)

    def run(
        self,
        waveforms: ControlWaveforms,
        initial_cell_voltage: float,
        variation: ComponentVariation | None = None,
        temperature_c: float = 30.0,
        record: bool = True,
    ) -> SimulationResult:
        """Simulate one command window.

        Parameters
        ----------
        waveforms:
            Drive waveforms of the four internal control signals.
        initial_cell_voltage:
            Analog voltage stored in the cell before the command (0, Vdd, or
            anything in between, e.g. Vdd/2 after a CODIC-sig).
        variation:
            Process-variation sample for this cell/SA pair; defaults to the
            nominal (variation-free) component.
        temperature_c:
            Operating temperature; shifts the SA offset through its
            temperature coefficient.
        record:
            When False, analog traces are not stored (faster for sweeps).
        """
        constants = self.constants
        variation = variation or ComponentVariation()

        cell = CellCapacitor(
            voltage=initial_cell_voltage, cap_factor=variation.cell_cap_factor
        )
        bitline = Bitline(voltage=constants.vpre, cap_factor=variation.bitline_cap_factor)
        reference = Bitline(voltage=constants.vpre, cap_factor=1.0)
        precharge_unit = PrechargeUnit()
        amplifier = SenseAmplifier(variation=variation, temperature_c=temperature_c)

        traces = WaveformSet()
        if record:
            traces.track(
                ["Vcell", "Vbitline", "Vreference", "wl", "EQ", "sense_p", "sense_n"]
            )

        dt = constants.dt_ns
        time_ns = 0.0
        window = waveforms.window_ns
        amplification_complete: float | None = None

        steps = int(round(window / dt))
        for step_index in range(steps + 1):
            time_ns = step_index * dt
            wl_on = waveforms.level("wl", time_ns) == 1
            eq_on = waveforms.level("EQ", time_ns) == 1
            sense_p_on = waveforms.level("sense_p", time_ns) == 1
            sense_n_on = waveforms.level("sense_n", time_ns) == 1

            if record:
                traces.record(
                    time_ns,
                    {
                        "Vcell": cell.voltage,
                        "Vbitline": bitline.voltage,
                        "Vreference": reference.voltage,
                        "wl": 1.0 if wl_on else 0.0,
                        "EQ": 1.0 if eq_on else 0.0,
                        "sense_p": 1.0 if sense_p_on else 0.0,
                        "sense_n": 1.0 if sense_n_on else 0.0,
                    },
                )

            if step_index == steps:
                break

            if eq_on:
                precharge_unit.apply(bitline, reference, constants, dt)
            if wl_on:
                cell.share_charge(bitline, constants, variation.wl_drive_factor, dt)
            amplifier.step(bitline, reference, sense_n_on, sense_p_on, constants, dt)

            if amplification_complete is None:
                excursion = abs(bitline.voltage - constants.vpre)
                if excursion >= 0.9 * (constants.vdd - constants.vpre):
                    amplification_complete = time_ns + dt

        final_cell_value = 1 if cell.voltage >= constants.vpre else 0
        final_bitline_value = 1 if bitline.voltage >= constants.vpre else 0
        cell_at_precharge = abs(cell.voltage - constants.vpre) <= 0.05 * constants.vdd

        return SimulationResult(
            final_cell_voltage=cell.voltage,
            final_bitline_voltage=bitline.voltage,
            final_cell_value=final_cell_value,
            final_bitline_value=final_bitline_value,
            cell_at_precharge=cell_at_precharge,
            amplification_complete_ns=amplification_complete,
            waveforms=traces,
            window_ns=window,
        )

    def run_sequence(
        self,
        waveform_sequence: list[ControlWaveforms],
        initial_cell_voltage: float,
        variation: ComponentVariation | None = None,
        temperature_c: float = 30.0,
        record: bool = False,
    ) -> list[SimulationResult]:
        """Simulate several command windows back-to-back on the same cell.

        The cell voltage carries over between windows; bitlines are assumed to
        be precharged between commands (the memory controller always inserts a
        precharge before re-activating, and CODIC commands are row-granular).
        This is how CODIC-sig followed by a regular activation is evaluated.
        """
        results: list[SimulationResult] = []
        cell_voltage = initial_cell_voltage
        for waveforms in waveform_sequence:
            result = self.run(
                waveforms,
                initial_cell_voltage=cell_voltage,
                variation=variation,
                temperature_c=temperature_c,
                record=record,
            )
            results.append(result)
            cell_voltage = result.final_cell_voltage
        return results

    def simulate_dram_cell(
        self,
        waveforms: ControlWaveforms,
        cell: DRAMCell,
        temperature_c: float = 30.0,
        record: bool = False,
    ) -> SimulationResult:
        """Simulate a command against a :class:`DRAMCell` and update its state."""
        result = self.run(
            waveforms,
            initial_cell_voltage=cell.voltage,
            variation=cell.variation,
            temperature_c=temperature_c,
            record=record,
        )
        cell.voltage = result.final_cell_voltage
        return result
