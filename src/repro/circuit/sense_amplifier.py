"""Behavioral model of the cross-coupled DRAM sense amplifier.

The sense amplifier (SA) consists of a cross-coupled PMOS pair (enabled by
``sense_p``) and a cross-coupled NMOS pair (enabled by ``sense_n``).  The
behavioral rules implemented here capture the functional properties the paper
relies on:

* **Both halves enabled** (regular activation): the SA regeneratively
  amplifies the developed differential between the bitline and the reference
  bitline.  If the differential is smaller than the SA's input-referred
  offset, the offset decides the outcome (this is what CODIC-sig /
  CODIC-sigsa exploit).
* **Only the NMOS half enabled** (CODIC-det first phase for generating '0'):
  both bitlines are pulled towards ground, with the bitline node moving
  faster than the reference node, deterministically developing a negative
  differential.
* **Only the PMOS half enabled**: the mirror image, developing a positive
  differential and hence a deterministic '1'.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.components import Bitline, CircuitConstants
from repro.circuit.process_variation import ComponentVariation


@dataclass
class SenseAmplifier:
    """One sense amplifier attached to a bitline pair."""

    variation: ComponentVariation = field(default_factory=ComponentVariation)
    temperature_c: float = 30.0
    #: True once the SA has committed to a resolution direction.  Regenerative
    #: latches do not change their mind once the differential is large.
    _latched_direction: int = 0

    def reset(self) -> None:
        """Forget any latched state (called when both SA halves turn off)."""
        self._latched_direction = 0

    def effective_offset(self) -> float:
        """Input-referred offset of this SA at the current temperature."""
        return self.variation.sa_offset_at(self.temperature_c)

    def step(
        self,
        bitline: Bitline,
        reference: Bitline,
        sense_n_on: bool,
        sense_p_on: bool,
        constants: CircuitConstants,
        dt_ns: float,
    ) -> None:
        """Advance the SA dynamics by one time step."""
        if not sense_n_on and not sense_p_on:
            self.reset()
            return

        if sense_n_on and sense_p_on:
            self._step_regenerative(bitline, reference, constants, dt_ns)
        elif sense_n_on:
            self._step_single_sided(bitline, reference, constants, dt_ns, target=0.0)
        else:
            self._step_single_sided(bitline, reference, constants, dt_ns, target=constants.vdd)

    # ------------------------------------------------------------------
    # Internal update rules
    # ------------------------------------------------------------------
    def _step_regenerative(
        self,
        bitline: Bitline,
        reference: Bitline,
        constants: CircuitConstants,
        dt_ns: float,
    ) -> None:
        """Full cross-coupled amplification towards the rails."""
        differential = bitline.voltage - reference.voltage
        if self._latched_direction == 0:
            decision = differential + self.effective_offset() * _offset_weight(differential)
            self._latched_direction = 1 if decision >= 0.0 else -1

        rate = min(dt_ns / constants.sense_tau_ns, 1.0)
        if self._latched_direction > 0:
            bitline.voltage += (constants.vdd - bitline.voltage) * rate
            reference.voltage += (0.0 - reference.voltage) * rate
        else:
            bitline.voltage += (0.0 - bitline.voltage) * rate
            reference.voltage += (constants.vdd - reference.voltage) * rate

    def _step_single_sided(
        self,
        bitline: Bitline,
        reference: Bitline,
        constants: CircuitConstants,
        dt_ns: float,
        target: float,
    ) -> None:
        """Pull both bitlines towards ``target`` with a structural asymmetry.

        The bitline node moves ``single_sided_asymmetry`` times faster than
        the reference node, which is what develops a deterministic
        differential for CODIC-det.
        """
        self._latched_direction = 0
        rate = min(dt_ns / constants.half_sense_tau_ns, 1.0)
        bitline.voltage += (target - bitline.voltage) * min(
            rate * constants.single_sided_asymmetry, 1.0
        )
        reference.voltage += (target - reference.voltage) * rate

    def resolve_precharged_value(self) -> int:
        """Value this SA resolves a perfectly precharged bitline pair to.

        This is the closed-form shortcut used by the Monte Carlo engine and by
        the chip model: with zero developed differential the regenerative
        decision is taken purely by the sign of the SA offset.
        """
        return 1 if self.effective_offset() >= 0.0 else 0


def _offset_weight(differential: float, crossover: float = 0.05) -> float:
    """Weight of the SA offset in the latch decision.

    When the developed differential is large (a real stored value was sensed),
    the offset is negligible; when the bitline pair is near-balanced (CODIC-sig
    after driving the cell to Vdd/2), the offset dominates.  The weight decays
    smoothly between the two regimes.
    """
    magnitude = abs(differential)
    if magnitude >= crossover:
        return 0.1
    return 1.0 - 0.9 * (magnitude / crossover)
