"""Process-variation models for the behavioral circuit simulator.

Process variation is the physical phenomenon CODIC-sig and CODIC-sigsa turn
into signatures: random, static, per-device mismatch in transistor threshold
voltages, transistor geometry and capacitances.  The paper models it in SPICE
as Gaussian variation of transistor length/width/threshold; here we collapse
those sources into the quantities that matter for circuit behaviour:

* ``sa_offset``        -- input-referred offset voltage of the sense amplifier
                          (in units of Vdd).  Positive offsets bias the SA
                          towards resolving to 1.
* ``cell_cap_factor``  -- multiplicative variation of the cell capacitance.
* ``bitline_cap_factor`` -- multiplicative variation of the bitline capacitance.
* ``leakage_factor``   -- multiplicative variation of the cell leakage current
                          (drives retention behaviour).
* ``wl_drive_factor``  -- multiplicative variation of the access-transistor
                          conductance.

The structural (design-time) asymmetry of the sense amplifier is modeled by
``STRUCTURAL_SA_OFFSET``: in the absence of process variation every SA in the
paper's SPICE model resolves a perfectly precharged bitline to '1'
(Appendix C).  The constant is calibrated so that the Monte Carlo bit-flip
rates of Table 11 are reproduced (~0.02 % of SAs flip at 4 % variation,
~0.2 % at 5 %, none at or below 3 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Input-referred offset (in Vdd units) that every SA has by construction.
#: With zero process variation this makes all SAs resolve a precharged bitline
#: to '1', matching the paper's SPICE observation in Appendix C.
STRUCTURAL_SA_OFFSET = 0.142 * 0.1

#: Scale factor converting "percent process variation" into the standard
#: deviation of the SA input-referred offset, in Vdd units.  A variation level
#: of 4 % therefore corresponds to sigma = 0.004 Vdd.
OFFSET_SIGMA_PER_PERCENT = 0.001

#: Additional offset noise introduced per degree Celsius away from the nominal
#: 30 C operating point (thermal noise / mobility mismatch drift).
THERMAL_OFFSET_SIGMA_PER_DEGREE = 2.0e-5

#: Nominal temperature at which variation parameters are defined.
NOMINAL_TEMPERATURE_C = 30.0


@dataclass(frozen=True)
class VariationParameters:
    """Statistical description of process variation for one manufacturing lot.

    ``variation_percent`` follows the paper's Table 11 convention: it is the
    single knob that scales all mismatch sources.  The individual sigma fields
    allow finer control for ablation studies.
    """

    variation_percent: float = 4.0
    cell_cap_sigma: float = 0.05
    bitline_cap_sigma: float = 0.03
    leakage_sigma: float = 0.30
    wl_drive_sigma: float = 0.05

    @property
    def sa_offset_sigma(self) -> float:
        """Standard deviation of the SA input-referred offset (Vdd units)."""
        return self.variation_percent * OFFSET_SIGMA_PER_PERCENT

    def scaled(self, variation_percent: float) -> "VariationParameters":
        """Return a copy with a different headline variation percentage."""
        scale = variation_percent / max(self.variation_percent, 1e-12)
        return VariationParameters(
            variation_percent=variation_percent,
            cell_cap_sigma=self.cell_cap_sigma * scale,
            bitline_cap_sigma=self.bitline_cap_sigma * scale,
            leakage_sigma=self.leakage_sigma,
            wl_drive_sigma=self.wl_drive_sigma * scale,
        )


@dataclass(frozen=True)
class ComponentVariation:
    """Concrete variation sample for one cell + its sense amplifier."""

    sa_offset: float = STRUCTURAL_SA_OFFSET
    sa_offset_temp_coeff: float = 0.0
    cell_cap_factor: float = 1.0
    bitline_cap_factor: float = 1.0
    leakage_factor: float = 1.0
    wl_drive_factor: float = 1.0

    def sa_offset_at(self, temperature_c: float, rng: np.random.Generator | None = None) -> float:
        """Effective SA offset at ``temperature_c``.

        The offset drifts linearly with temperature through the per-component
        temperature coefficient, and (optionally) receives a small thermal
        noise sample when ``rng`` is given, modelling shot-to-shot noise.
        """
        delta_t = temperature_c - NOMINAL_TEMPERATURE_C
        offset = self.sa_offset + self.sa_offset_temp_coeff * delta_t
        if rng is not None and abs(delta_t) > 0:
            offset += rng.normal(0.0, THERMAL_OFFSET_SIGMA_PER_DEGREE * abs(delta_t))
        return offset


@dataclass
class VariationModel:
    """Samples :class:`ComponentVariation` instances from a parameter set.

    The model owns its RNG so that a chip (or a Monte Carlo engine) can draw a
    reproducible stream of component samples.
    """

    parameters: VariationParameters = field(default_factory=VariationParameters)
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def sample(self) -> ComponentVariation:
        """Draw one component sample."""
        params = self.parameters
        return ComponentVariation(
            sa_offset=STRUCTURAL_SA_OFFSET
            + self.rng.normal(0.0, params.sa_offset_sigma),
            sa_offset_temp_coeff=self.rng.normal(0.0, params.sa_offset_sigma * 2e-3),
            cell_cap_factor=_positive(self.rng.normal(1.0, params.cell_cap_sigma)),
            bitline_cap_factor=_positive(self.rng.normal(1.0, params.bitline_cap_sigma)),
            leakage_factor=_positive(self.rng.lognormal(0.0, params.leakage_sigma)),
            wl_drive_factor=_positive(self.rng.normal(1.0, params.wl_drive_sigma)),
        )

    def sample_many(self, count: int) -> list[ComponentVariation]:
        """Draw ``count`` independent component samples."""
        return [self.sample() for _ in range(count)]

    def sample_offsets(self, count: int) -> np.ndarray:
        """Vectorized draw of ``count`` SA offsets (for Monte Carlo sweeps)."""
        return STRUCTURAL_SA_OFFSET + self.rng.normal(
            0.0, self.parameters.sa_offset_sigma, size=count
        )


def _positive(value: float, floor: float = 1e-3) -> float:
    """Clamp a sampled multiplicative factor away from zero/negative values."""
    return float(max(value, floor))
