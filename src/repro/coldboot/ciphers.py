"""Cipher-based cold-boot protection and the Table 6 overhead comparison.

Memory encryption prevents cold-boot attacks without destroying data, but it
pays for that at runtime.  The paper compares CODIC self-destruction against
two low-cost stream/block ciphers evaluated by Yitbarek et al. (HPCA'17) on
an Intel Atom N280-class core: ChaCha-8 and AES-128.  Table 6 reports three
overheads:

* runtime performance overhead (encryption latency is hidden unless more
  than ~16 back-to-back row hits occur),
* runtime power overhead at peak memory bandwidth,
* area overhead, split into processor-side and DRAM-side area.

The models here are analytical, as in the paper: the cipher numbers come from
the cited characterization, and the CODIC numbers come from the substrate's
delay-element cost model (zero runtime overhead, ~1.1 % DRAM area).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.delay_element import total_cost


@dataclass(frozen=True)
class OverheadComparison:
    """One row of Table 6."""

    mechanism: str
    runtime_performance_overhead: float
    runtime_power_overhead: float
    processor_area_overhead: float
    dram_area_overhead: float

    def as_percentages(self) -> dict[str, float]:
        """All overheads expressed in percent."""
        return {
            "runtime_performance_%": 100.0 * self.runtime_performance_overhead,
            "runtime_power_%": 100.0 * self.runtime_power_overhead,
            "processor_area_%": 100.0 * self.processor_area_overhead,
            "dram_area_%": 100.0 * self.dram_area_overhead,
        }


@dataclass(frozen=True)
class CipherOverheadModel:
    """Analytical overhead model of a memory-encryption cipher.

    The performance overhead is negligible as long as the cipher's keystream
    (or pipelined datapath) keeps up with back-to-back row-buffer hits; beyond
    ``hidden_latency_row_hits`` consecutive hits the latency would become
    visible, which is why the paper's ~0 % figure is annotated with that
    assumption.
    """

    name: str
    cycles_per_block: int
    power_overhead_peak: float
    processor_area_overhead: float
    hidden_latency_row_hits: int = 16

    def runtime_performance_overhead(self, consecutive_row_hits: int = 16) -> float:
        """Performance overhead for a given burstiness of row hits."""
        if consecutive_row_hits <= self.hidden_latency_row_hits:
            return 0.0
        excess = consecutive_row_hits - self.hidden_latency_row_hits
        return min(0.25, 0.005 * excess)

    def comparison(self, consecutive_row_hits: int = 16) -> OverheadComparison:
        """Table 6 row for this cipher."""
        return OverheadComparison(
            mechanism=self.name,
            runtime_performance_overhead=self.runtime_performance_overhead(
                consecutive_row_hits
            ),
            runtime_power_overhead=self.power_overhead_peak,
            processor_area_overhead=self.processor_area_overhead,
            dram_area_overhead=0.0,
        )


#: ChaCha-8 on an Atom N280-class core (Yitbarek et al., HPCA'17 numbers).
CHACHA8 = CipherOverheadModel(
    name="ChaCha-8",
    cycles_per_block=490,
    power_overhead_peak=0.17,
    processor_area_overhead=0.009,
)

#: AES-128 on an Atom N280-class core.
AES128 = CipherOverheadModel(
    name="AES-128",
    cycles_per_block=336,
    power_overhead_peak=0.12,
    processor_area_overhead=0.013,
)


def codic_self_destruction_overheads() -> OverheadComparison:
    """Table 6 row for CODIC self-destruction.

    Self-destruction runs only at power-on, so runtime performance and power
    overheads are zero; the only cost is the DRAM-side area of the CODIC
    delay elements (plus the power-on FSM, which is negligible next to the
    existing self-refresh logic).
    """
    substrate_cost = total_cost()
    return OverheadComparison(
        mechanism="CODIC Self-Destruction",
        runtime_performance_overhead=0.0,
        runtime_power_overhead=0.0,
        processor_area_overhead=0.0,
        dram_area_overhead=substrate_cost.area_overhead_fraction,
    )


def table6_comparison(consecutive_row_hits: int = 16) -> list[OverheadComparison]:
    """All three rows of Table 6."""
    return [
        codic_self_destruction_overheads(),
        CHACHA8.comparison(consecutive_row_hits),
        AES128.comparison(consecutive_row_hits),
    ]
