"""Cold-boot attack prevention (Sections 5.2 and 6.2).

A cold-boot attack transplants a powered-off DRAM module into an
attacker-controlled machine and reads out whatever charge survived the power
cycle.  The paper's defence, *self-destruction*, overwrites the whole module
with CODIC-generated values autonomously at power-on, before the (possibly
attacker-controlled) memory controller can issue any command.

This package provides:

* :mod:`repro.coldboot.attack`       -- the retention-decay attack model used
  to quantify how much data an attacker recovers with and without protection,
* :mod:`repro.coldboot.mechanisms`   -- the four destruction mechanisms of
  Figure 7 (TCG firmware zeroing, LISA-clone, RowClone, CODIC) with their
  latency and energy models,
* :mod:`repro.coldboot.evaluation`   -- the module-size sweep of Figure 7 and
  the 8 GB energy comparison of Section 6.2,
* :mod:`repro.coldboot.ciphers`      -- the runtime/power/area overhead
  comparison against ChaCha-8 and AES-128 memory encryption (Table 6).
"""

from repro.coldboot.attack import ColdBootAttack, AttackOutcome
from repro.coldboot.mechanisms import (
    DestructionMechanism,
    DestructionResult,
    TCGZeroing,
    RowCloneDestruction,
    LISACloneDestruction,
    CODICSelfDestruction,
    all_mechanisms,
)
from repro.coldboot.evaluation import DestructionSweep, SweepPoint
from repro.coldboot.ciphers import CipherOverheadModel, OverheadComparison, table6_comparison

__all__ = [
    "ColdBootAttack",
    "AttackOutcome",
    "DestructionMechanism",
    "DestructionResult",
    "TCGZeroing",
    "RowCloneDestruction",
    "LISACloneDestruction",
    "CODICSelfDestruction",
    "all_mechanisms",
    "DestructionSweep",
    "SweepPoint",
    "CipherOverheadModel",
    "OverheadComparison",
    "table6_comparison",
]
