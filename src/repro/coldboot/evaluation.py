"""Module-size sweep for the destruction mechanisms (Figure 7, Section 6.2).

The sweep evaluates the destruction time of every mechanism for module sizes
from 64 MB (low-cost-device memories) to a hypothetical single-rank 64 GB
module, and the destruction energy for the 8 GB module used in the paper's
energy comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.coldboot.mechanisms import DestructionMechanism, DestructionResult, all_mechanisms
from repro.dram.geometry import ModuleGeometry
from repro.dram.timing import timing_for_module
from repro.utils.units import GB, MB, format_bytes

#: Module capacities of Figure 7.
FIGURE7_CAPACITIES: tuple[int, ...] = (
    64 * MB,
    256 * MB,
    1 * GB,
    4 * GB,
    16 * GB,
    64 * GB,
)

#: Capacity used for the energy comparison in Section 6.2.
ENERGY_COMPARISON_CAPACITY: int = 8 * GB


@dataclass(frozen=True)
class SweepPoint:
    """Results of all mechanisms at one module capacity."""

    capacity_bytes: int
    results: tuple[DestructionResult, ...]

    @property
    def capacity_label(self) -> str:
        """Human-readable capacity (Figure 7 x-axis label)."""
        return format_bytes(self.capacity_bytes).replace(".0 ", "")

    def result(self, mechanism: str) -> DestructionResult:
        """Result of one mechanism at this capacity."""
        for result in self.results:
            if result.mechanism == mechanism:
                return result
        raise KeyError(f"no result for mechanism {mechanism!r}")

    def speedup_over(self, mechanism: str, baseline: str) -> float:
        """Destruction-time speedup of ``mechanism`` over ``baseline``."""
        return (
            self.result(baseline).destruction_time_ns
            / self.result(mechanism).destruction_time_ns
        )

    def energy_ratio_over(self, mechanism: str, baseline: str) -> float:
        """Energy advantage of ``mechanism`` over ``baseline``."""
        return self.result(baseline).energy_nj / self.result(mechanism).energy_nj


@dataclass
class DestructionSweep:
    """Runs the Figure 7 capacity sweep."""

    mechanisms: Sequence[DestructionMechanism] = field(default_factory=all_mechanisms)
    capacities: Sequence[int] = FIGURE7_CAPACITIES
    chips_per_rank: int = 8
    ranks: int = 1

    def geometry_for(self, capacity_bytes: int) -> ModuleGeometry:
        """Module geometry used at one sweep capacity."""
        return ModuleGeometry.for_capacity(
            capacity_bytes, chips_per_rank=self.chips_per_rank, ranks=self.ranks
        )

    def run_point(self, capacity_bytes: int) -> SweepPoint:
        """Evaluate every mechanism at one module capacity."""
        geometry = self.geometry_for(capacity_bytes)
        timing = timing_for_module(capacity_bytes, self.chips_per_rank, self.ranks)
        results = tuple(
            mechanism.destroy(geometry, timing) for mechanism in self.mechanisms
        )
        return SweepPoint(capacity_bytes=capacity_bytes, results=results)

    def run(self) -> list[SweepPoint]:
        """Evaluate every mechanism at every Figure 7 capacity."""
        return [self.run_point(capacity) for capacity in self.capacities]

    def energy_comparison(
        self, capacity_bytes: int = ENERGY_COMPARISON_CAPACITY
    ) -> SweepPoint:
        """The Section 6.2 energy comparison (8 GB module)."""
        return self.run_point(capacity_bytes)
