"""Destruction mechanisms compared in Figure 7.

Each mechanism destroys the full contents of a DRAM module at power-on and
reports the time and energy it needs:

* **TCG zeroing** -- the firmware overwrites every cache line with zeros
  through the memory controller (regular write commands), per the TCG
  platform-reset mitigation specification.
* **RowClone destruction** -- an in-DRAM mechanism copies a reserved all-zero
  row over every other row using RowClone-FPM (two back-to-back activations
  per destination row).
* **LISA-clone destruction** -- like RowClone, but the copy crosses subarrays
  through the LISA inter-subarray links, occupying the bank slightly longer.
* **CODIC self-destruction** -- the paper's mechanism: one CODIC command per
  row (parallelized across banks, respecting tRRD/tFAW), entirely inside the
  DRAM chip and without memory-controller involvement.

Latency is computed from the rank-level activation throughput model
(per-bank row-cycle time, tRRD, tFAW -- the same constraints the cycle-level
controller enforces); energy comes from the DRAMPower-style command energy
model plus background power over the destruction interval.  The TCG baseline
additionally models the data-bus bottleneck of streaming zeros from the
controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.commands import CommandType
from repro.dram.geometry import ModuleGeometry
from repro.dram.timing import TimingParameters, timing_for_module
from repro.power.model import CommandEnergyModel
from repro.utils.units import NS_PER_MS


@dataclass(frozen=True)
class DestructionResult:
    """Time and energy one mechanism needs to destroy one module."""

    mechanism: str
    capacity_bytes: int
    destruction_time_ns: float
    energy_nj: float
    rows_destroyed: int

    @property
    def destruction_time_ms(self) -> float:
        """Destruction time in milliseconds (Figure 7 y-axis)."""
        return self.destruction_time_ns / NS_PER_MS

    @property
    def energy_mj(self) -> float:
        """Energy in millijoules."""
        return self.energy_nj / 1e6


@dataclass
class DestructionMechanism:
    """Base class for destruction mechanisms."""

    name: str = "base"
    energy_model: CommandEnergyModel = field(default_factory=CommandEnergyModel)

    # -- hooks -----------------------------------------------------------
    def activations_per_row(self) -> int:
        """Row activations the mechanism performs per destroyed row."""
        raise NotImplementedError

    def bank_occupancy_ns(self, timing: TimingParameters) -> float:
        """Time one destroyed row keeps its bank busy."""
        raise NotImplementedError

    def row_command(self) -> CommandType:
        """Command whose energy is charged once per destroyed row."""
        raise NotImplementedError

    def extra_row_energy_nj(self, geometry: ModuleGeometry) -> float:
        """Additional per-row energy beyond the row command (e.g. data bursts)."""
        return 0.0

    # -- evaluation ------------------------------------------------------
    def per_row_interval_ns(
        self, geometry: ModuleGeometry, timing: TimingParameters
    ) -> float:
        """Sustained interval between consecutive destroyed rows in one rank.

        The rate is bounded by the slowest of: the per-bank row cycle spread
        over all banks, the ACT-to-ACT spacing tRRD, and the four-activation
        window tFAW -- with the latter two scaled by how many activations the
        mechanism issues per row.
        """
        acts = self.activations_per_row()
        per_bank = (self.bank_occupancy_ns(timing) + timing.tRP_ns) / geometry.banks
        return max(per_bank, timing.tRRD_ns * acts, (timing.tFAW_ns / 4.0) * acts)

    def destroy(
        self,
        geometry: ModuleGeometry,
        timing: TimingParameters | None = None,
    ) -> DestructionResult:
        """Destroy a whole module (all ranks run in parallel internally)."""
        timing = timing or timing_for_module(geometry.capacity_bytes,
                                             geometry.chips_per_rank, geometry.ranks)
        rows_per_rank = geometry.rows_per_rank
        interval = self.per_row_interval_ns(geometry, timing)
        # Ranks destroy their rows concurrently: each rank has its own banks
        # and the mechanisms run inside the DRAM devices (for TCG the shared
        # bus is accounted for separately in ``extra_interval``).
        time_ns = rows_per_rank * interval + self.fixed_overhead_ns(geometry, timing)

        per_row_energy = self.energy_model.command_energy_nj(self.row_command())
        per_row_energy += self.extra_row_energy_nj(geometry)
        total_rows = geometry.total_rows
        energy = per_row_energy * total_rows
        energy += self.energy_model.background_energy_nj(time_ns)

        return DestructionResult(
            mechanism=self.name,
            capacity_bytes=geometry.capacity_bytes,
            destruction_time_ns=time_ns,
            energy_nj=energy,
            rows_destroyed=total_rows,
        )

    def fixed_overhead_ns(
        self, geometry: ModuleGeometry, timing: TimingParameters
    ) -> float:
        """One-time overhead (e.g. programming CODIC mode registers)."""
        return 0.0


@dataclass
class CODICSelfDestruction(DestructionMechanism):
    """One CODIC command per row, issued by the in-DRAM power-on FSM."""

    name: str = "CODIC"

    def activations_per_row(self) -> int:
        return 1

    def bank_occupancy_ns(self, timing: TimingParameters) -> float:
        # A CODIC command occupies its bank like an activation through the
        # restore phase (tRAS); the following tRP is added by the caller.
        return timing.tRAS_ns

    def row_command(self) -> CommandType:
        return CommandType.CODIC

    def fixed_overhead_ns(
        self, geometry: ModuleGeometry, timing: TimingParameters
    ) -> float:
        # Programming the four CODIC mode registers once at power-on.
        return 4 * 10 * timing.tCK_ns


@dataclass
class RowCloneDestruction(DestructionMechanism):
    """RowClone-FPM copy of a reserved zero row over every other row."""

    name: str = "RowClone"

    def activations_per_row(self) -> int:
        return 2

    def bank_occupancy_ns(self, timing: TimingParameters) -> float:
        # Source activation + destination activation, both kept open through
        # their restore phases.
        return 2.0 * timing.tRAS_ns

    def row_command(self) -> CommandType:
        return CommandType.ROWCLONE_COPY

    def fixed_overhead_ns(
        self, geometry: ModuleGeometry, timing: TimingParameters
    ) -> float:
        # The reserved all-zero source row in each bank must be initialized
        # once with regular writes before the copies start.
        lines_per_row = geometry.row_bytes // 64
        return geometry.banks * lines_per_row * timing.burst_time_ns + timing.tRC_ns


@dataclass
class LISACloneDestruction(DestructionMechanism):
    """LISA-clone copy of a zero row across subarrays."""

    name: str = "LISA-clone"

    def activations_per_row(self) -> int:
        return 2

    def bank_occupancy_ns(self, timing: TimingParameters) -> float:
        # LISA-clone chains row-buffer movements between subarrays on top of
        # the two activations, occupying the bank for roughly three row
        # cycles per destroyed row (Chang et al., HPCA'16).
        return 3.0 * timing.tRAS_ns + 2.0 * timing.tRP_ns

    def row_command(self) -> CommandType:
        return CommandType.LISA_COPY

    def fixed_overhead_ns(
        self, geometry: ModuleGeometry, timing: TimingParameters
    ) -> float:
        lines_per_row = geometry.row_bytes // 64
        return geometry.banks * lines_per_row * timing.burst_time_ns + timing.tRC_ns


@dataclass
class TCGZeroing(DestructionMechanism):
    """Firmware zeroing through the memory controller (TCG baseline).

    The firmware walks physical memory, writing zeros and flushing them to
    DRAM.  The sustained rate is limited by the slower of the DRAM data bus
    and the core's store+flush issue rate; the paper's measured rate for this
    baseline corresponds to roughly 1.9 GB/s on the evaluated system.
    """

    name: str = "TCG"
    #: Cycles the in-order core spends per zeroed cache line (store + CLFLUSH
    #: issue + loop overhead), at ``core_clock_ghz``.
    core_cycles_per_line: float = 110.0
    core_clock_ghz: float = 3.2

    def activations_per_row(self) -> int:
        return 1

    def bank_occupancy_ns(self, timing: TimingParameters) -> float:
        return timing.tRAS_ns

    def row_command(self) -> CommandType:
        return CommandType.ACTIVATE

    def extra_row_energy_nj(self, geometry: ModuleGeometry) -> float:
        lines_per_row = geometry.row_bytes // 64
        write_energy = self.energy_model.command_energy_nj(CommandType.WRITE)
        precharge = self.energy_model.command_energy_nj(CommandType.PRECHARGE)
        return lines_per_row * write_energy + precharge

    def per_row_interval_ns(
        self, geometry: ModuleGeometry, timing: TimingParameters
    ) -> float:
        lines_per_row = geometry.row_bytes // 64
        bus_time = lines_per_row * timing.burst_time_ns
        core_time = lines_per_row * self.core_cycles_per_line / self.core_clock_ghz
        row_overhead = timing.tRCD_ns + timing.tRP_ns
        # Writes to all ranks share the channel, so the per-row rate does not
        # improve with rank count; the core issue rate dominates in practice.
        return max(bus_time, core_time) + row_overhead

    def destroy(
        self,
        geometry: ModuleGeometry,
        timing: TimingParameters | None = None,
    ) -> DestructionResult:
        """TCG destroys rows strictly sequentially over the shared channel."""
        timing = timing or timing_for_module(geometry.capacity_bytes,
                                             geometry.chips_per_rank, geometry.ranks)
        interval = self.per_row_interval_ns(geometry, timing)
        total_rows = geometry.total_rows
        time_ns = total_rows * interval

        per_row_energy = (
            self.energy_model.command_energy_nj(self.row_command())
            + self.extra_row_energy_nj(geometry)
        )
        energy = per_row_energy * total_rows
        energy += self.energy_model.background_energy_nj(time_ns)
        return DestructionResult(
            mechanism=self.name,
            capacity_bytes=geometry.capacity_bytes,
            destruction_time_ns=time_ns,
            energy_nj=energy,
            rows_destroyed=total_rows,
        )


def all_mechanisms(
    energy_model: CommandEnergyModel | None = None,
) -> list[DestructionMechanism]:
    """The four mechanisms of Figure 7, in the paper's plotting order."""
    model = energy_model or CommandEnergyModel()
    return [
        TCGZeroing(energy_model=model),
        LISACloneDestruction(energy_model=model),
        RowCloneDestruction(energy_model=model),
        CODICSelfDestruction(energy_model=model),
    ]
