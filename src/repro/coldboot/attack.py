"""Cold-boot attack model.

The attack model follows the paper's threat model (Section 5.2.1): the
attacker powers the module off for an arbitrarily short time (transplant or
malicious reboot), then reads the contents on a machine under their control.
Data survives the power-off period according to the per-cell retention times
of the chip model (colder modules retain longer); the defender's protection
is measured by how much of the *original* data the attacker can still
recover after the defence runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dram.module import DRAMModule, SegmentAddress
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class AttackOutcome:
    """Result of one simulated cold-boot attack."""

    #: Number of bits the attacker compared against the victim's data.
    bits_examined: int
    #: Number of bits that still matched the victim's data after the attack.
    bits_recovered: int
    #: Power-off duration the attacker needed (seconds).
    power_off_seconds: float
    temperature_c: float

    @property
    def recovery_rate(self) -> float:
        """Fraction of examined bits the attacker recovered correctly."""
        return self.bits_recovered / self.bits_examined if self.bits_examined else 0.0

    def succeeded(self, threshold: float = 0.75) -> bool:
        """Heuristic: the attack succeeds when most bits are recovered.

        Error-correcting key-recovery attacks tolerate some bit decay, so the
        default threshold is well below 100 %.
        """
        return self.recovery_rate >= threshold


@dataclass
class ColdBootAttack:
    """Simulates transplant-style cold-boot attacks against a module."""

    module: DRAMModule
    #: Power-off duration of the transplant, in seconds.
    power_off_seconds: float = 2.0
    #: Temperature during the transplant (attackers often chill the module to
    #: slow decay; 30 C models a room-temperature attack).
    temperature_c: float = 30.0
    seed: int = 77
    _rng: np.random.Generator = field(init=False)

    def __post_init__(self) -> None:
        if self.power_off_seconds < 0:
            raise ValueError("power_off_seconds must be non-negative")
        self._rng = make_rng(self.seed, "coldboot-attack")

    def plant_secret(self, segment: SegmentAddress) -> np.ndarray:
        """Write a random secret into one segment and return it."""
        secret = self._rng.integers(0, 2, self.module.segment_bits).astype(np.uint8)
        self.module.write_segment(segment, secret)
        return secret

    def execute(
        self,
        segment: SegmentAddress,
        secret: np.ndarray,
        defence_ran: bool = False,
    ) -> AttackOutcome:
        """Run the attack against one segment.

        ``defence_ran`` indicates that a destruction mechanism already
        overwrote the module at power-on (the caller is responsible for having
        invoked it on the module); the attack then reads whatever the defence
        left behind.
        """
        secret = np.asarray(secret, dtype=np.uint8)
        if secret.shape != (self.module.segment_bits,):
            raise ValueError("secret must cover exactly one segment")

        for chip in self.module.chips:
            chip.disable_refresh()
            chip.advance_time(self.power_off_seconds, self.temperature_c)

        observed = self.module.read_segment(
            segment, temperature_c=self.temperature_c, rng=self._rng
        )

        for chip in self.module.chips:
            chip.enable_refresh()

        matching = int(np.count_nonzero(observed == secret))
        return AttackOutcome(
            bits_examined=int(secret.size),
            bits_recovered=matching,
            power_off_seconds=self.power_off_seconds,
            temperature_c=self.temperature_c,
        )
