"""Command counters and energy accounting.

The memory controller and the application-level mechanisms (self-destruction,
secure deallocation) record how many commands of each type they issued; the
:class:`EnergyAccountant` turns those counters plus elapsed time into total
energy using a :class:`~repro.power.model.CommandEnergyModel`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.dram.commands import CommandType
from repro.power.model import CommandEnergyModel


@dataclass
class CommandCounters:
    """Counts of DRAM commands issued during a simulation."""

    counts: Counter = field(default_factory=Counter)

    def record(self, command: CommandType, count: int = 1) -> None:
        """Record ``count`` occurrences of ``command``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.counts[command] += count

    def count(self, command: CommandType) -> int:
        """Number of recorded occurrences of ``command``."""
        return self.counts.get(command, 0)

    def total(self) -> int:
        """Total number of recorded commands."""
        return sum(self.counts.values())

    def merge(self, other: "CommandCounters") -> "CommandCounters":
        """Return new counters holding the sum of both operands."""
        merged = CommandCounters()
        merged.counts = self.counts + other.counts
        return merged

    def as_dict(self) -> dict[str, int]:
        """Counts keyed by command mnemonic (for reports)."""
        return {command.value: count for command, count in sorted(
            self.counts.items(), key=lambda item: item[0].value
        )}


@dataclass
class EnergyAccountant:
    """Accumulates command and background energy."""

    model: CommandEnergyModel = field(default_factory=CommandEnergyModel)
    counters: CommandCounters = field(default_factory=CommandCounters)
    elapsed_ns: float = 0.0

    def record_command(self, command: CommandType, count: int = 1) -> None:
        """Record commands for later energy accounting."""
        self.counters.record(command, count)

    def record_time(self, duration_ns: float) -> None:
        """Record elapsed wall-clock time (for background energy)."""
        if duration_ns < 0:
            raise ValueError("duration must be non-negative")
        self.elapsed_ns += duration_ns

    def command_energy_nj(self) -> float:
        """Total energy of all recorded commands."""
        return sum(
            self.model.command_energy_nj(command) * count
            for command, count in self.counters.counts.items()
        )

    def background_energy_nj(self) -> float:
        """Background energy over the recorded elapsed time."""
        return self.model.background_energy_nj(self.elapsed_ns)

    def total_energy_nj(self, include_background: bool = True) -> float:
        """Total energy (commands plus, optionally, background)."""
        energy = self.command_energy_nj()
        if include_background:
            energy += self.background_energy_nj()
        return energy
