"""Per-command DRAM energy model.

The numbers follow the paper's use of DRAMPower for a DDR3-1600 x8 device:

* a full activate/precharge cycle costs ~17 nJ, of which roughly 40 % is
  in-DRAM address routing and 40 % is sense-amplifier / precharge-logic
  switching (Section 4.3);
* all CODIC variants cost essentially the same (~17.2 nJ) because they share
  the address-routing and SA/precharge components;
* column accesses (read/write bursts) and background/refresh power are also
  modeled so that full-system energy comparisons (secure deallocation,
  TCG-style zeroing) can be made.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.variants import CODICVariant, VariantFunction
from repro.dram.commands import CommandType


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy components of one row-granular DRAM command (nanojoules)."""

    address_routing_nj: float
    sense_amplification_nj: float
    precharge_logic_nj: float
    wordline_nj: float
    delay_element_nj: float = 0.0

    @property
    def total_nj(self) -> float:
        """Total command energy."""
        return (
            self.address_routing_nj
            + self.sense_amplification_nj
            + self.precharge_logic_nj
            + self.wordline_nj
            + self.delay_element_nj
        )


@dataclass(frozen=True)
class CommandEnergyModel:
    """Energy per DRAM command for one device/channel."""

    #: Energy of a full activation (ACT + implicit restore), nJ.
    activate_nj: float = 17.3
    #: Energy of a precharge command, nJ.
    precharge_nj: float = 17.2
    #: Energy of one read burst (column access + I/O), nJ.
    read_nj: float = 4.4
    #: Energy of one write burst (column access + I/O), nJ.
    write_nj: float = 4.6
    #: Energy of one all-bank refresh command, nJ.
    refresh_nj: float = 120.0
    #: Background power of the device, in watts (used for idle energy).
    background_power_w: float = 0.12
    #: Energy of the CODIC configurable delay elements per command, nJ.
    codic_delay_element_nj: float = 0.0005
    #: Fraction of a row command's energy spent routing the address in-DRAM.
    address_routing_fraction: float = 0.40
    #: Fraction spent in the sense amplifiers / precharge logic.
    sense_precharge_fraction: float = 0.40

    # ------------------------------------------------------------------
    # Row-granular commands
    # ------------------------------------------------------------------
    def breakdown(self, command: CommandType) -> EnergyBreakdown:
        """Energy breakdown of a row-granular command."""
        total = self.command_energy_nj(command)
        address = total * self.address_routing_fraction
        sense_precharge = total * self.sense_precharge_fraction
        wordline = total - address - sense_precharge
        delay = (
            self.codic_delay_element_nj
            if command is CommandType.CODIC
            else 0.0
        )
        return EnergyBreakdown(
            address_routing_nj=address,
            sense_amplification_nj=sense_precharge / 2,
            precharge_logic_nj=sense_precharge / 2,
            wordline_nj=wordline,
            delay_element_nj=delay,
        )

    def command_energy_nj(self, command: CommandType) -> float:
        """Energy of one command."""
        if command is CommandType.ACTIVATE:
            return self.activate_nj
        if command in (CommandType.PRECHARGE, CommandType.PRECHARGE_ALL):
            return self.precharge_nj
        if command in (CommandType.READ, CommandType.READ_AP):
            return self.read_nj
        if command in (CommandType.WRITE, CommandType.WRITE_AP):
            return self.write_nj
        if command is CommandType.REFRESH:
            return self.refresh_nj
        if command is CommandType.CODIC:
            # All CODIC variants route the address and exercise the SA or the
            # precharge logic, so they land within ~0.1 nJ of each other.
            return self.precharge_nj + self.codic_delay_element_nj
        if command is CommandType.ROWCLONE_COPY:
            # RowClone-FPM: a full source activation followed by a destination
            # activation that only drives the already-latched row buffer into
            # the destination row (no charge sharing / sensing), so the second
            # activation is considerably cheaper than the first.
            return 1.7 * self.activate_nj
        if command is CommandType.LISA_COPY:
            # LISA-clone: RowClone-class activations plus the row-buffer
            # movement across the inter-subarray links.
            return 2.5 * self.activate_nj
        if command is CommandType.MODE_REGISTER_SET:
            return 0.5
        raise ValueError(f"no energy model for command {command!r}")

    # ------------------------------------------------------------------
    # CODIC variants (Table 2)
    # ------------------------------------------------------------------
    def variant_energy_nj(self, variant: CODICVariant) -> float:
        """Energy of one CODIC variant (reproduces Table 2).

        Every variant pays the address-routing cost; variants that exercise
        the sense amplifiers (activate-like, deterministic, sigsa) or the
        precharge logic (precharge-like, signature) additionally pay the
        SA/precharge component.  The resulting energies are all ~17.2 nJ,
        with CODIC-activate marginally higher due to the full restore.
        """
        if variant.function is VariantFunction.ACTIVATE:
            return self.activate_nj
        if variant.function is VariantFunction.NOOP:
            return self.command_energy_nj(CommandType.MODE_REGISTER_SET)
        return self.precharge_nj + self.codic_delay_element_nj

    # ------------------------------------------------------------------
    # Background energy
    # ------------------------------------------------------------------
    def background_energy_nj(self, duration_ns: float) -> float:
        """Background (non-command) energy over ``duration_ns``."""
        if duration_ns < 0:
            raise ValueError("duration must be non-negative")
        return self.background_power_w * duration_ns  # W * ns = nJ
