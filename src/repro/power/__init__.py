"""DRAM energy modelling (DRAMPower substitute).

The paper computes command energies with DRAMPower; the evaluation only uses
aggregate per-command energies (activation ~17 nJ, with ~40 % spent on
in-DRAM address routing and ~40 % on the sense amplifiers / precharge logic),
so this package provides a per-command energy model with that breakdown plus
command counters for accumulating the energy of full mechanisms (cold-boot
destruction, secure deallocation).
"""

from repro.power.model import CommandEnergyModel, EnergyBreakdown
from repro.power.counters import CommandCounters, EnergyAccountant

__all__ = [
    "CommandEnergyModel",
    "EnergyBreakdown",
    "CommandCounters",
    "EnergyAccountant",
]
