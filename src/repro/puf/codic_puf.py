"""The CODIC-sig PUF (Section 5.1).

Evaluating the PUF on a segment consists of:

1. issuing a CODIC-sig command to every row of the segment (driving the
   cells to Vdd/2),
2. issuing a regular activation, which amplifies each cell to 0 or 1
   depending on process variation,
3. reading the segment and taking the addresses of the minority ('1') cells
   as the response.

Because the responses are highly stable, the PUF works with a lightweight
filter (a handful of repeated evaluations intersected together) or with no
filter at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dram.module import DRAMModule
from repro.puf.base import Challenge, PUFResponse
from repro.puf.filtering import intersect_filter, scalar_mode_forced
from repro.utils.rng import make_rng


@dataclass
class CODICSigPUF:
    """CODIC-sig based DRAM PUF."""

    module: DRAMModule
    #: Number of repeated evaluations combined by the lightweight filter.
    #: ``1`` disables filtering (the "w/o filter" configuration of Table 4).
    filter_passes: int = 5
    name: str = "CODIC-sig PUF"
    #: Seed stream for read noise (each evaluation draws fresh noise).
    noise_seed: int = 101

    #: Count of default-seeded raw evaluations; bookkeeping only, so it is
    #: excluded from equality and repr (cache fingerprints stay clean) and
    #: untouched when the caller supplies its own rng.
    _evaluations: int = field(default=0, compare=False, repr=False)

    def evaluation_passes(self) -> int:
        """Raw segment evaluations needed per response."""
        return self.filter_passes

    def evaluate(
        self,
        challenge: Challenge,
        temperature_c: float = 30.0,
        rng: np.random.Generator | None = None,
    ) -> PUFResponse:
        """Evaluate the PUF on one challenge.

        Routes through the multi-read counting kernel
        (:meth:`repro.dram.module.DRAMModule.sig_response_multi`), which is
        bit-identical to the retained :meth:`evaluate_scalar` loop;
        ``REPRO_PUF_SCALAR=1`` forces the scalar path process-wide.
        """
        if scalar_mode_forced():
            return self.evaluate_scalar(challenge, temperature_c, rng)
        passes = self.filter_passes
        if rng is None:
            # Advance the bookkeeping counter exactly as the scalar loop's
            # per-pass `_single_pass` calls would, so default-seeded noise
            # sequences stay reproducible across both paths.
            rngs = []
            for pass_index in range(passes):
                self._evaluations += 1
                rngs.append(
                    make_rng(self.noise_seed, "codic-sig", self._evaluations, pass_index)
                )
        else:
            rngs = [rng] * passes
        positions = self.module.sig_response_multi(
            challenge.segment, passes, temperature_c=temperature_c, rngs=rngs
        )
        # Freshly built and unaliased: freeze in place so PUFResponse takes
        # the zero-copy fast path.
        positions.setflags(write=False)
        return PUFResponse(
            position_array=positions, challenge=challenge, temperature_c=temperature_c
        )

    def evaluate_scalar(
        self,
        challenge: Challenge,
        temperature_c: float = 30.0,
        rng: np.random.Generator | None = None,
    ) -> PUFResponse:
        """Scalar reference loop: per-pass reads reduced by `intersect_filter`."""
        observations = [
            self._single_pass(challenge, temperature_c, rng, pass_index)
            for pass_index in range(self.filter_passes)
        ]
        if len(observations) == 1:
            positions = observations[0]
        else:
            positions = intersect_filter(observations)
        # Freshly built and unaliased: freeze in place so PUFResponse takes
        # the zero-copy fast path.
        positions.setflags(write=False)
        return PUFResponse(
            position_array=positions, challenge=challenge, temperature_c=temperature_c
        )

    def _single_pass(
        self,
        challenge: Challenge,
        temperature_c: float,
        rng: np.random.Generator | None,
        pass_index: int,
    ) -> np.ndarray:
        if rng is None:
            self._evaluations += 1
            noise_rng = make_rng(
                self.noise_seed, "codic-sig", self._evaluations, pass_index
            )
        else:
            noise_rng = rng
        return self.module.sig_response(
            challenge.segment, temperature_c=temperature_c, rng=noise_rng
        )
