"""PUF abstractions: challenges, responses and the DRAM PUF interface.

Following the paper, a *challenge* is the address and size of a memory
segment, and the *response* is the set of cell addresses (bit positions
within the segment) that exhibit the PUF's characteristic behaviour
(minority amplification value for CODIC-sig, access failures for the
latency-based PUFs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.dram.module import DRAMModule, SegmentAddress


@dataclass(frozen=True)
class Challenge:
    """A PUF challenge: which memory segment to evaluate."""

    segment: SegmentAddress
    #: Size of the segment in bytes (the paper uses 8 KB segments).
    size_bytes: int = 8192

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("segment size must be positive")

    @classmethod
    def random(cls, module: DRAMModule, rng: np.random.Generator,
               size_bytes: int = 8192) -> "Challenge":
        """Draw a random challenge addressing one segment of ``module``."""
        return cls(segment=module.random_segment(rng), size_bytes=size_bytes)


@dataclass(frozen=True)
class PUFResponse:
    """A PUF response: the set of characteristic bit positions of a segment."""

    positions: frozenset[int]
    challenge: Challenge
    temperature_c: float = 30.0

    def __len__(self) -> int:
        return len(self.positions)

    def jaccard_with(self, other: "PUFResponse") -> float:
        """Jaccard similarity with another response."""
        union = self.positions | other.positions
        if not union:
            # Two empty responses are (vacuously) identical.
            return 1.0
        return len(self.positions & other.positions) / len(union)

    def matches(self, other: "PUFResponse") -> bool:
        """Exact-match comparison (used by no-filter authentication)."""
        return self.positions == other.positions


class DRAMPUF(Protocol):
    """Interface shared by all DRAM PUF implementations."""

    #: Human-readable name used in reports and plots.
    name: str

    def evaluate(
        self,
        challenge: Challenge,
        temperature_c: float = 30.0,
        rng: np.random.Generator | None = None,
    ) -> PUFResponse:
        """Produce one (possibly filtered) response to ``challenge``."""
        ...  # pragma: no cover - protocol definition

    def evaluation_passes(self) -> int:
        """Number of raw segment evaluations one response requires."""
        ...  # pragma: no cover - protocol definition
