"""PUF abstractions: challenges, responses and the DRAM PUF interface.

Following the paper, a *challenge* is the address and size of a memory
segment, and the *response* is the set of cell addresses (bit positions
within the segment) that exhibit the PUF's characteristic behaviour
(minority amplification value for CODIC-sig, access failures for the
latency-based PUFs).

Responses are **array-native**: the position set is stored as a sorted
``np.int64`` array (see :mod:`repro.puf.positions`) so Jaccard comparisons
and filtering reduce to sorted-array set operations.  A frozenset view is
kept for callers that still want Python set semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol

import numpy as np

from repro.dram.module import DRAMModule, SegmentAddress
from repro.puf.positions import (
    as_position_array,
    check_canonical,
    jaccard_index_arrays,
    positions_equal,
)


@dataclass(frozen=True)
class Challenge:
    """A PUF challenge: which memory segment to evaluate."""

    segment: SegmentAddress
    #: Size of the segment in bytes (the paper uses 8 KB segments).
    size_bytes: int = 8192

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("segment size must be positive")

    @classmethod
    def random(cls, module: DRAMModule, rng: np.random.Generator,
               size_bytes: int = 8192) -> "Challenge":
        """Draw a random challenge addressing one segment of ``module``."""
        return cls(segment=module.random_segment(rng), size_bytes=size_bytes)


class PUFResponse:
    """A PUF response: the set of characteristic bit positions of a segment.

    The native representation is :attr:`position_array`, a sorted unique
    ``np.int64`` array; :attr:`positions` materializes a frozenset view on
    first access for callers that want Python set semantics.  Construct from
    either form::

        PUFResponse(positions={3, 17}, challenge=challenge)
        PUFResponse(position_array=sorted_array, challenge=challenge)

    The ``position_array`` keyword is the fast path: the array must already
    be canonical (sorted, duplicate-free -- validated in O(n)).  The input is
    copied unless it is a read-only array that *owns its data*; freezing a
    freshly built array with ``setflags(write=False)`` skips the copy.
    Passing a frozen array is a buffer-sharing promise: the caller must not
    re-enable writeability and mutate it afterwards (numpy cannot prevent
    that), or the stored hashable response is corrupted.
    """

    __slots__ = ("position_array", "challenge", "temperature_c", "_positions")

    def __init__(
        self,
        positions: "frozenset[int] | set[int] | Iterable[int] | None" = None,
        challenge: Challenge | None = None,
        temperature_c: float = 30.0,
        *,
        position_array: np.ndarray | None = None,
    ) -> None:
        if challenge is None:
            raise TypeError("PUFResponse requires a challenge")
        if position_array is not None:
            if positions is not None:
                raise TypeError("pass either positions or position_array, not both")
            array = check_canonical(position_array)
        elif positions is not None:
            array = as_position_array(positions)
            if not isinstance(positions, np.ndarray):
                # Materialized fresh from a set/iterable: freeze in place
                # instead of paying a second allocation in the copy below.
                array.setflags(write=False)
        else:
            raise TypeError("PUFResponse requires positions or position_array")
        if array.flags.writeable or not array.flags.owndata:
            # A read-only *view* is not immutable (its base may be writable),
            # so only read-only owning arrays are stored without copying.
            array = array.copy()
        array.setflags(write=False)
        self.position_array = array
        self.challenge = challenge
        self.temperature_c = temperature_c
        self._positions: frozenset[int] | None = None

    def __setattr__(self, name: str, value: object) -> None:
        # Immutable after construction (responses are hashable); only the
        # lazy frozenset cache slot may be written later.
        if name != "_positions" and hasattr(self, "_positions"):
            raise AttributeError(f"PUFResponse is immutable; cannot set {name!r}")
        object.__setattr__(self, name, value)

    @property
    def positions(self) -> frozenset[int]:
        """Frozenset view of the position set (materialized lazily)."""
        if self._positions is None:
            self._positions = frozenset(self.position_array.tolist())
        return self._positions

    def __len__(self) -> int:
        return int(self.position_array.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PUFResponse):
            return NotImplemented
        return (
            self.challenge == other.challenge
            and self.temperature_c == other.temperature_c
            and positions_equal(self.position_array, other.position_array)
        )

    def __hash__(self) -> int:
        return hash(
            (self.challenge, self.temperature_c, self.position_array.tobytes())
        )

    def __repr__(self) -> str:
        return (
            f"PUFResponse(len={len(self)}, challenge={self.challenge!r}, "
            f"temperature_c={self.temperature_c!r})"
        )

    def jaccard_with(self, other: "PUFResponse") -> float:
        """Jaccard similarity with another response."""
        return jaccard_index_arrays(self.position_array, other.position_array)

    def matches(self, other: "PUFResponse") -> bool:
        """Exact-match comparison (used by no-filter authentication)."""
        return positions_equal(self.position_array, other.position_array)


class DRAMPUF(Protocol):
    """Interface shared by all DRAM PUF implementations."""

    #: Human-readable name used in reports and plots.
    name: str

    def evaluate(
        self,
        challenge: Challenge,
        temperature_c: float = 30.0,
        rng: np.random.Generator | None = None,
    ) -> PUFResponse:
        """Produce one (possibly filtered) response to ``challenge``."""
        ...  # pragma: no cover - protocol definition

    def evaluation_passes(self) -> int:
        """Number of raw segment evaluations one response requires."""
        ...  # pragma: no cover - protocol definition
