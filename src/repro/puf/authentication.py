"""Challenge-response authentication on top of a DRAM PUF (Section 6.1.1).

The paper evaluates a naive authentication protocol built on the CODIC-sig
PUF: during *enrollment* the verifier stores golden responses for a set of
challenges; during *authentication* the device re-evaluates a challenge and
the verifier accepts only if the response matches the golden one exactly (or,
in the threshold variant, if the Jaccard similarity exceeds a threshold).
With exact matching the paper reports an average false rejection rate of
0.64 % and a false acceptance rate of 0.00 %.

Golden and candidate responses are array-native
(:class:`~repro.puf.base.PUFResponse` backed by sorted position arrays), so
both the exact match and the threshold comparison reduce to sorted-array set
operations rather than Python set algebra.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.puf.base import Challenge, DRAMPUF, PUFResponse
from repro.utils.rng import make_rng


@dataclass
class AuthenticationResult:
    """Outcome of an authentication experiment."""

    genuine_trials: int
    false_rejections: int
    impostor_trials: int
    false_acceptances: int

    @property
    def false_rejection_rate(self) -> float:
        """Fraction of genuine attempts that were (wrongly) rejected."""
        return (
            self.false_rejections / self.genuine_trials if self.genuine_trials else 0.0
        )

    @property
    def false_acceptance_rate(self) -> float:
        """Fraction of impostor attempts that were (wrongly) accepted."""
        return (
            self.false_acceptances / self.impostor_trials if self.impostor_trials else 0.0
        )


@dataclass
class AuthenticationProtocol:
    """Enroll-then-verify challenge-response protocol."""

    puf: DRAMPUF
    #: Jaccard similarity required to accept; ``1.0`` is exact matching.
    acceptance_threshold: float = 1.0
    _golden: dict[Challenge, PUFResponse] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # A Jaccard index lives in [0, 1]: anything below 0 would accept
        # every response, anything above 1 would reject even exact matches.
        if not 0.0 <= self.acceptance_threshold <= 1.0:
            raise ValueError(
                "acceptance_threshold must be in [0, 1], got "
                f"{self.acceptance_threshold}"
            )

    def enroll(self, challenge: Challenge, temperature_c: float = 30.0,
               rng: np.random.Generator | None = None) -> PUFResponse:
        """Store the golden response for one challenge."""
        response = self.puf.evaluate(challenge, temperature_c, rng=rng)
        self._golden[challenge] = response
        return response

    def authenticate(
        self,
        challenge: Challenge,
        response: PUFResponse,
    ) -> bool:
        """Check a response against the enrolled golden response."""
        golden = self._golden.get(challenge)
        if golden is None:
            raise KeyError("challenge was never enrolled")
        if self.acceptance_threshold >= 1.0:
            return response.matches(golden)
        return response.jaccard_with(golden) >= self.acceptance_threshold

    def enrolled_challenges(self) -> list[Challenge]:
        """Challenges with stored golden responses."""
        return list(self._golden)

    # ------------------------------------------------------------------
    # Experiment harness
    # ------------------------------------------------------------------
    def run_experiment(
        self,
        challenges: list[Challenge],
        genuine_trials_per_challenge: int = 5,
        impostor_trials_per_challenge: int = 5,
        temperature_c: float = 30.0,
        seed: int = 99,
    ) -> AuthenticationResult:
        """Measure FRR/FAR over a set of challenges.

        Genuine trials re-evaluate the enrolled challenge on the same device;
        impostor trials present the response of a *different* challenge (a
        different device/segment), which must be rejected.
        """
        rng = make_rng(seed, "auth")
        for challenge in challenges:
            if challenge not in self._golden:
                self.enroll(challenge, temperature_c, rng=rng)

        false_rejections = 0
        genuine_trials = 0
        for challenge in challenges:
            for _ in range(genuine_trials_per_challenge):
                response = self.puf.evaluate(challenge, temperature_c, rng=rng)
                genuine_trials += 1
                if not self.authenticate(challenge, response):
                    false_rejections += 1

        false_acceptances = 0
        impostor_trials = 0
        if len(challenges) >= 2:
            for index, challenge in enumerate(challenges):
                for trial in range(impostor_trials_per_challenge):
                    other = challenges[(index + 1 + trial) % len(challenges)]
                    if other is challenge:
                        continue
                    impostor_response = self.puf.evaluate(other, temperature_c, rng=rng)
                    impostor_trials += 1
                    if self.authenticate(challenge, impostor_response):
                        false_acceptances += 1

        return AuthenticationResult(
            genuine_trials=genuine_trials,
            false_rejections=false_rejections,
            impostor_trials=impostor_trials,
            false_acceptances=false_acceptances,
        )
