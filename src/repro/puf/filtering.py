"""Response filtering mechanisms.

Raw DRAM PUF observations are noisy: a cell that usually exhibits the
characteristic behaviour may occasionally not, and vice versa.  The paper
distinguishes between the *heavy* filtering the DRAM Latency PUF needs
(100 reads, keep cells failing more than 90 times) and the *lightweight*
filter that is sufficient for CODIC-sig and PreLatPUF (5 reads).  Both reduce
to set combinators over repeated observations, implemented here as vectorized
operations over sorted position arrays (:mod:`repro.puf.positions`).
Observations may be given as arrays or as Python sets; the result is always a
canonical sorted ``np.int64`` array.

The multi-read module kernels (:meth:`repro.dram.module.DRAMModule.
sig_response_multi` and friends) use the *counting formulation* of these
combinators: every per-pass observation array is unique, so one
``np.unique(return_counts=True)`` over the concatenated passes replaces the
pairwise :func:`intersect_filter` reduction (keep ``counts == passes``) and
directly generalizes :func:`majority_filter` (keep ``counts > threshold``).
The PUF classes route their ``evaluate`` methods through those kernels unless
:data:`PUF_SCALAR_ENV_VAR` forces the retained scalar reference loops.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

import numpy as np

from repro.puf.positions import as_position_array, intersect_positions

#: Environment switch forcing every PUF ``evaluate`` through the retained
#: scalar reference loops (mirrors ``REPRO_FLEET_SCALAR``): CI byte-compares
#: the two paths through the full experiment CLI.
PUF_SCALAR_ENV_VAR = "REPRO_PUF_SCALAR"


def scalar_mode_forced() -> bool:
    """True when ``REPRO_PUF_SCALAR=1`` forces the scalar reference loops."""
    return os.environ.get(PUF_SCALAR_ENV_VAR) == "1"


def majority_filter(
    observations: "Sequence[np.ndarray | frozenset[int] | set[int]]",
    threshold: int | None = None,
) -> np.ndarray:
    """Keep positions that appear in more than ``threshold`` observations.

    With the default threshold (strict majority), a position must appear in
    more than half of the observations.  The DRAM Latency PUF uses 100
    observations with a threshold of 90.  Implemented as one
    ``np.unique(..., return_counts=True)`` over the concatenated observation
    arrays.
    """
    if not observations:
        raise ValueError("at least one observation is required")
    if threshold is None:
        threshold = len(observations) // 2
    if not 0 <= threshold < len(observations):
        raise ValueError(
            f"threshold {threshold} must be in [0, {len(observations) - 1}]"
        )
    concatenated = np.concatenate(
        [as_position_array(observation) for observation in observations]
    )
    positions, counts = np.unique(concatenated, return_counts=True)
    return positions[counts > threshold]


def intersect_filter(
    observations: "Iterable[np.ndarray | frozenset[int] | set[int]]",
) -> np.ndarray:
    """Keep only positions present in *every* observation.

    This is the conservative filter the paper applies to CODIC-sig and
    PreLatPUF responses ("a conservative filter of 5 challenges for
    generating always the same response"): the resulting response contains
    only perfectly repeatable positions.  Implemented as a reduction with
    ``np.intersect1d(assume_unique=True)`` over sorted observation arrays.
    """
    result: np.ndarray | None = None
    reduced = False
    for observation in observations:
        array = as_position_array(observation)
        if result is None:
            result = array
        else:
            result = intersect_positions(result, array)
            reduced = True
    if result is None:
        raise ValueError("at least one observation is required")
    if not reduced:
        # A single observation would be returned as the caller's own array
        # (as_position_array passes canonical ndarrays through); copy so the
        # result is always an independent array, like every multi-observation
        # path.
        result = result.copy()
    return result
