"""Response filtering mechanisms.

Raw DRAM PUF observations are noisy: a cell that usually exhibits the
characteristic behaviour may occasionally not, and vice versa.  The paper
distinguishes between the *heavy* filtering the DRAM Latency PUF needs
(100 reads, keep cells failing more than 90 times) and the *lightweight*
filter that is sufficient for CODIC-sig and PreLatPUF (5 reads).  Both reduce
to simple set combinators over repeated observations.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence


def majority_filter(
    observations: Sequence[frozenset[int]], threshold: int | None = None
) -> frozenset[int]:
    """Keep positions that appear in more than ``threshold`` observations.

    With the default threshold (strict majority), a position must appear in
    more than half of the observations.  The DRAM Latency PUF uses 100
    observations with a threshold of 90.
    """
    if not observations:
        raise ValueError("at least one observation is required")
    if threshold is None:
        threshold = len(observations) // 2
    if not 0 <= threshold < len(observations):
        raise ValueError(
            f"threshold {threshold} must be in [0, {len(observations) - 1}]"
        )
    counts: Counter = Counter()
    for observation in observations:
        counts.update(observation)
    return frozenset(
        position for position, count in counts.items() if count > threshold
    )


def intersect_filter(observations: Iterable[frozenset[int]]) -> frozenset[int]:
    """Keep only positions present in *every* observation.

    This is the conservative filter the paper applies to CODIC-sig and
    PreLatPUF responses ("a conservative filter of 5 challenges for
    generating always the same response"): the resulting response contains
    only perfectly repeatable positions.
    """
    result: frozenset[int] | None = None
    for observation in observations:
        result = observation if result is None else (result & observation)
    if result is None:
        raise ValueError("at least one observation is required")
    return result
