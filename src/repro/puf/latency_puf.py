"""The DRAM Latency PUF baseline (Kim et al., HPCA 2018).

The DRAM Latency PUF accesses a segment with a strongly reduced tRCD
(2.5 ns in the paper's comparison); cells that cannot be read reliably under
that timing fail, and the addresses of the failing cells form the response.
Because individual failures are probabilistic, the mechanism reads the
segment 100 times and keeps only cells that failed more than 90 times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dram.module import DRAMModule
from repro.puf.base import Challenge, PUFResponse
from repro.puf.filtering import scalar_mode_forced
from repro.utils.rng import make_rng


@dataclass
class DRAMLatencyPUF:
    """Reduced-tRCD failure PUF with heavy filtering."""

    module: DRAMModule
    trcd_ns: float = 2.5
    #: Number of reads the filtering mechanism performs.
    filter_reads: int = 100
    #: Minimum number of observed failures for a cell to enter the response.
    filter_threshold: int = 90
    name: str = "DRAM Latency PUF"
    noise_seed: int = 202

    #: Count of default-seeded raw evaluations; bookkeeping only (excluded
    #: from equality/repr, untouched when the caller supplies an rng).
    _evaluations: int = field(default=0, compare=False, repr=False)

    def evaluation_passes(self) -> int:
        """Raw segment evaluations needed per response."""
        return self.filter_reads

    def evaluate(
        self,
        challenge: Challenge,
        temperature_c: float = 30.0,
        rng: np.random.Generator | None = None,
    ) -> PUFResponse:
        """Evaluate the PUF on one challenge (filtered response).

        Routes through the fused counting kernel
        (:meth:`repro.dram.module.DRAMModule.rcd_filtered_response` with a
        live rng: one rank-wide binomial draw over the memoized segment
        profile), bit-identical to the retained :meth:`evaluate_scalar`
        per-chip loop; ``REPRO_PUF_SCALAR=1`` forces the scalar path
        process-wide.
        """
        if scalar_mode_forced():
            return self.evaluate_scalar(challenge, temperature_c, rng)
        if rng is None:
            self._evaluations += 1
            noise_rng = make_rng(self.noise_seed, "latency-puf", self._evaluations)
        else:
            noise_rng = rng
        positions = self.module.rcd_filtered_response(
            challenge.segment,
            trcd_ns=self.trcd_ns,
            reads=self.filter_reads,
            threshold=self.filter_threshold,
            temperature_c=temperature_c,
            rng=noise_rng,
        )
        # Freshly built and unaliased: freeze in place so PUFResponse takes
        # the zero-copy fast path.
        positions.setflags(write=False)
        return PUFResponse(
            position_array=positions, challenge=challenge, temperature_c=temperature_c
        )

    def evaluate_scalar(
        self,
        challenge: Challenge,
        temperature_c: float = 30.0,
        rng: np.random.Generator | None = None,
    ) -> PUFResponse:
        """Scalar reference loop: per-chip profile shift and binomial draws."""
        if rng is None:
            self._evaluations += 1
            noise_rng = make_rng(self.noise_seed, "latency-puf", self._evaluations)
        else:
            noise_rng = rng
        positions = self.module.rcd_filtered_response_scalar(
            challenge.segment,
            trcd_ns=self.trcd_ns,
            reads=self.filter_reads,
            threshold=self.filter_threshold,
            temperature_c=temperature_c,
            rng=noise_rng,
        )
        positions.setflags(write=False)
        return PUFResponse(
            position_array=positions, challenge=challenge, temperature_c=temperature_c
        )

    def evaluate_unfiltered(
        self,
        challenge: Challenge,
        temperature_c: float = 30.0,
        rng: np.random.Generator | None = None,
    ) -> PUFResponse:
        """One raw (single-read) response, without the filtering mechanism.

        The paper notes that a lightly-filtered Latency PUF would be fast but
        of much lower quality; this method exposes that configuration for the
        quality-versus-latency ablation.
        """
        if rng is None:
            self._evaluations += 1
            noise_rng = make_rng(self.noise_seed, "latency-puf-raw", self._evaluations)
        else:
            noise_rng = rng
        positions = self.module.rcd_response(
            challenge.segment,
            trcd_ns=self.trcd_ns,
            temperature_c=temperature_c,
            rng=noise_rng,
        )
        positions.setflags(write=False)
        return PUFResponse(
            position_array=positions, challenge=challenge, temperature_c=temperature_c
        )
