"""Jaccard-index quality metrics (Section 6.1.1).

The paper measures PUF quality with the Jaccard index between two responses:
``|u1 ∩ u2| / |u1 ∪ u2|``.  *Intra-Jaccard* compares two responses to the
same challenge (ideal value: 1 -- the PUF is repeatable); *Inter-Jaccard*
compares responses to different challenges (ideal value: 0 -- the PUF is
unique).  Figure 5 plots the distributions of both indices over 10,000 random
segment pairs; :class:`JaccardDistribution` reproduces those distributions
and their histogram representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np


def jaccard_index(first: frozenset[int] | set, second: frozenset[int] | set) -> float:
    """Jaccard similarity of two position sets.

    Two empty sets are treated as identical (index 1.0), matching the
    convention in :meth:`repro.puf.base.PUFResponse.jaccard_with`.
    """
    first = set(first)
    second = set(second)
    union = first | second
    if not union:
        return 1.0
    return len(first & second) / len(union)


@dataclass
class JaccardDistribution:
    """A collection of Jaccard indices with summary statistics."""

    values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        """Record one Jaccard index."""
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"Jaccard index must be in [0, 1], got {value}")
        self.values.append(value)

    def extend(self, values: Iterable[float]) -> None:
        """Record many Jaccard indices."""
        for value in values:
            self.add(value)

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "JaccardDistribution":
        """Build a validated distribution from an iterable of indices."""
        distribution = cls()
        distribution.extend(values)
        return distribution

    @classmethod
    def merge(cls, parts: "Iterable[JaccardDistribution]") -> "JaccardDistribution":
        """Combine partial distributions by concatenation, in the given order.

        Merging is associative, so shard results can be combined pairwise or
        all at once: merging the shards of a pair range in index order yields
        exactly the distribution a serial evaluation of the full range
        produces (each pair owns an index-derived RNG stream).
        """
        merged = cls()
        for part in parts:
            merged.values.extend(part.values)
        return merged

    def __len__(self) -> int:
        return len(self.values)

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Mean index (0 when empty)."""
        return float(np.mean(self.values)) if self.values else 0.0

    @property
    def median(self) -> float:
        """Median index (0 when empty)."""
        return float(np.median(self.values)) if self.values else 0.0

    @property
    def std(self) -> float:
        """Standard deviation (dispersion of the distribution)."""
        return float(np.std(self.values)) if self.values else 0.0

    def fraction_above(self, threshold: float) -> float:
        """Fraction of indices strictly above ``threshold``."""
        if not self.values:
            return 0.0
        return float(np.mean(np.asarray(self.values) > threshold))

    def fraction_below(self, threshold: float) -> float:
        """Fraction of indices strictly below ``threshold``."""
        if not self.values:
            return 0.0
        return float(np.mean(np.asarray(self.values) < threshold))

    # ------------------------------------------------------------------
    # Histogram (Figure 5 representation)
    # ------------------------------------------------------------------
    def histogram(self, bins: int = 50) -> tuple[np.ndarray, np.ndarray]:
        """Probability histogram over [0, 1] (percent per bin).

        Returns ``(bin_edges, probabilities_percent)`` with ``bins + 1`` edges
        and ``bins`` probabilities, matching the y-axis of the paper's
        Figure 5 ("Probability (%)").
        """
        if bins <= 0:
            raise ValueError("bins must be positive")
        counts, edges = np.histogram(self.values, bins=bins, range=(0.0, 1.0))
        total = counts.sum()
        probabilities = (100.0 * counts / total) if total else counts.astype(float)
        return edges, probabilities

    def summary(self) -> dict[str, float]:
        """Compact summary used in reports."""
        return {
            "count": float(len(self.values)),
            "mean": self.mean,
            "median": self.median,
            "std": self.std,
        }


def pairwise_jaccard(responses: Sequence[frozenset[int]]) -> JaccardDistribution:
    """All-pairs Jaccard distribution of a set of responses."""
    distribution = JaccardDistribution()
    for i in range(len(responses)):
        for j in range(i + 1, len(responses)):
            distribution.add(jaccard_index(responses[i], responses[j]))
    return distribution
