"""Jaccard-index quality metrics (Section 6.1.1).

The paper measures PUF quality with the Jaccard index between two responses:
``|u1 ∩ u2| / |u1 ∪ u2|``.  *Intra-Jaccard* compares two responses to the
same challenge (ideal value: 1 -- the PUF is repeatable); *Inter-Jaccard*
compares responses to different challenges (ideal value: 0 -- the PUF is
unique).  Figure 5 plots the distributions of both indices over 10,000 random
segment pairs; :class:`JaccardDistribution` reproduces those distributions
and their histogram representation.

:class:`JaccardDistribution` is backed by a growable ``float64`` array:
``extend``/``merge`` are `np.concatenate`-style block appends with vectorized
range validation, and the summary statistics are computed once per mutation
generation and cached.  The stored values are identical floats to the former
list-based implementation, so shard merges and JSON encodings are unchanged
byte for byte.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.puf.positions import as_position_array, jaccard_index_arrays


def jaccard_index(
    first: "np.ndarray | frozenset[int] | set[int]",
    second: "np.ndarray | frozenset[int] | set[int]",
) -> float:
    """Jaccard similarity of two position collections.

    Two empty sets are treated as identical (index 1.0), matching the
    convention in :meth:`repro.puf.base.PUFResponse.jaccard_with`.  Inputs
    may be sorted position arrays or Python sets; either form yields the
    same exact integer-cardinality ratio.
    """
    return jaccard_index_arrays(as_position_array(first), as_position_array(second))


#: Initial capacity of a distribution's backing array.
_INITIAL_CAPACITY = 64


class JaccardDistribution:
    """A collection of Jaccard indices with summary statistics.

    Values live in a growable ``float64`` ndarray; ``as_array()`` exposes a
    read-only snapshot and :attr:`values` a plain-list copy (the JSON-safe
    form the engine cache persists).  Mean/median/std are cached per
    mutation generation.
    """

    __slots__ = ("_data", "_size", "_stats")

    def __init__(self, values: Iterable[float] | None = None) -> None:
        self._data = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._size = 0
        self._stats: dict[str, float] | None = None
        if values is not None:
            self.extend(values)

    # ------------------------------------------------------------------
    # Construction and mutation
    # ------------------------------------------------------------------
    @property
    def values(self) -> list[float]:
        """The recorded indices as a plain list.

        This is a fresh JSON-safe *copy* on every access (unlike the former
        list-backed field): mutating the returned list does not affect the
        distribution -- use :meth:`add`/:meth:`extend` to record indices.
        """
        return self.as_array().tolist()

    def as_array(self) -> np.ndarray:
        """Read-only ndarray snapshot of the recorded indices."""
        view = self._data[: self._size]
        view.setflags(write=False)
        return view

    def add(self, value: float) -> None:
        """Record one Jaccard index."""
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"Jaccard index must be in [0, 1], got {value}")
        self._reserve(1)
        self._data[self._size] = value
        self._size += 1
        self._stats = None

    def extend(self, values: Iterable[float]) -> None:
        """Record many Jaccard indices (vectorized validation and append)."""
        if isinstance(values, JaccardDistribution):
            block = values.as_array()
        elif isinstance(values, np.ndarray):
            block = values.astype(np.float64, copy=False)
        else:
            block = np.fromiter(values, dtype=np.float64)
        if block.size == 0:
            return
        invalid = ~((block >= 0.0) & (block <= 1.0))
        if invalid.any():
            offender = block[int(np.argmax(invalid))]
            raise ValueError(f"Jaccard index must be in [0, 1], got {offender}")
        self._append_block(block)

    @classmethod
    def from_values(cls, values: "Iterable[float] | np.ndarray") -> "JaccardDistribution":
        """Build a validated distribution from indices (ndarrays take the
        vectorized block-append path inside :meth:`extend`)."""
        return cls(values)

    @classmethod
    def merge(cls, parts: "Iterable[JaccardDistribution]") -> "JaccardDistribution":
        """Combine partial distributions by concatenation, in the given order.

        Merging is associative, so shard results can be combined pairwise or
        all at once: merging the shards of a pair range in index order yields
        exactly the distribution a serial evaluation of the full range
        produces (each pair owns an index-derived RNG stream).  Parts are
        already validated, so the merge is a plain ``np.concatenate``.
        """
        merged = cls()
        arrays = [part.as_array() for part in parts]
        arrays = [array for array in arrays if array.size]
        if arrays:
            merged._append_block(np.concatenate(arrays))
        return merged

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        if needed <= self._data.size:
            return
        capacity = max(self._data.size * 2, needed, _INITIAL_CAPACITY)
        grown = np.empty(capacity, dtype=np.float64)
        grown[: self._size] = self._data[: self._size]
        self._data = grown

    def _append_block(self, block: np.ndarray) -> None:
        self._reserve(block.size)
        self._data[self._size : self._size + block.size] = block
        self._size += int(block.size)
        self._stats = None

    def __len__(self) -> int:
        return self._size

    def __getstate__(self) -> np.ndarray:
        # Serialize only the recorded values: the spare capacity of the
        # backing buffer is uninitialized memory, which would make pickles
        # nondeterministic (and up to 2x larger) for equal distributions.
        return self._data[: self._size].copy()

    def __setstate__(self, state: np.ndarray) -> None:
        self._data = np.asarray(state, dtype=np.float64)
        self._size = int(self._data.size)
        self._stats = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JaccardDistribution):
            return NotImplemented
        return bool(np.array_equal(self.as_array(), other.as_array()))

    def __repr__(self) -> str:
        return f"JaccardDistribution(count={self._size}, mean={self.mean:.4f})"

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    def _summary_stats(self) -> dict[str, float]:
        if self._stats is None:
            if self._size:
                array = self._data[: self._size]
                self._stats = {
                    "mean": float(np.mean(array)),
                    "median": float(np.median(array)),
                    "std": float(np.std(array)),
                }
            else:
                self._stats = {"mean": 0.0, "median": 0.0, "std": 0.0}
        return self._stats

    @property
    def mean(self) -> float:
        """Mean index (0 when empty)."""
        return self._summary_stats()["mean"]

    @property
    def median(self) -> float:
        """Median index (0 when empty)."""
        return self._summary_stats()["median"]

    @property
    def std(self) -> float:
        """Standard deviation (dispersion of the distribution)."""
        return self._summary_stats()["std"]

    def fraction_above(self, threshold: float) -> float:
        """Fraction of indices strictly above ``threshold``."""
        if not self._size:
            return 0.0
        return float(np.mean(self._data[: self._size] > threshold))

    def fraction_below(self, threshold: float) -> float:
        """Fraction of indices strictly below ``threshold``."""
        if not self._size:
            return 0.0
        return float(np.mean(self._data[: self._size] < threshold))

    # ------------------------------------------------------------------
    # Histogram (Figure 5 representation)
    # ------------------------------------------------------------------
    def histogram(self, bins: int = 50) -> tuple[np.ndarray, np.ndarray]:
        """Probability histogram over [0, 1] (percent per bin).

        Returns ``(bin_edges, probabilities_percent)`` with ``bins + 1`` edges
        and ``bins`` probabilities, matching the y-axis of the paper's
        Figure 5 ("Probability (%)").
        """
        if bins <= 0:
            raise ValueError("bins must be positive")
        counts, edges = np.histogram(
            self._data[: self._size], bins=bins, range=(0.0, 1.0)
        )
        total = counts.sum()
        probabilities = (100.0 * counts / total) if total else counts.astype(float)
        return edges, probabilities

    def summary(self) -> dict[str, float]:
        """Compact summary used in reports."""
        return {
            "count": float(self._size),
            "mean": self.mean,
            "median": self.median,
            "std": self.std,
        }


def pairwise_jaccard(
    responses: "Sequence[np.ndarray | frozenset[int] | set[int]]",
) -> JaccardDistribution:
    """All-pairs Jaccard distribution of a set of responses."""
    arrays = [as_position_array(response) for response in responses]
    distribution = JaccardDistribution()
    for i in range(len(arrays)):
        for j in range(i + 1, len(arrays)):
            distribution.add(jaccard_index_arrays(arrays[i], arrays[j]))
    return distribution
