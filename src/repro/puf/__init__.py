"""DRAM Physical Unclonable Functions (Section 5.1 / 6.1).

This package implements the CODIC-sig PUF and the two state-of-the-art
baselines the paper compares against:

* **CODIC-sig PUF** -- drives a memory segment's cells to Vdd/2 with the
  CODIC-sig command and amplifies them with a regular activation; the
  resulting minority-cell addresses form the response.
* **DRAM Latency PUF** (Kim et al., HPCA'18) -- accesses the segment with a
  strongly reduced tRCD and uses the addresses of failing cells, filtered
  over 100 reads.
* **PreLatPUF** (Talukder et al., IEEE Access'19) -- uses failures induced by
  a strongly reduced tRP.

It also provides the Jaccard-index quality metrics, the evaluation harness
used for Figures 5 and 6 (including temperature and aging sweeps), the
response-time model of Table 4, and a challenge-response authentication
protocol with false-accept/false-reject analysis.
"""

from repro.puf.base import Challenge, PUFResponse, DRAMPUF
from repro.puf.codic_puf import CODICSigPUF
from repro.puf.latency_puf import DRAMLatencyPUF
from repro.puf.prelat_puf import PreLatPUF
from repro.puf.filtering import majority_filter, intersect_filter
from repro.puf.jaccard import jaccard_index, JaccardDistribution
from repro.puf.positions import (
    as_position_array,
    intersect_positions,
    jaccard_index_arrays,
    positions_equal,
    union_positions,
)
from repro.puf.evaluation import (
    PUFEvaluator,
    PUFQualityResult,
    TemperaturePoint,
    aging_pairs_batch,
    quality_pairs_batch,
    temperature_pairs_batch,
)
from repro.puf.timing import PUFTimingModel, ResponseTimeEstimate
from repro.puf.authentication import AuthenticationProtocol, AuthenticationResult

__all__ = [
    "Challenge",
    "PUFResponse",
    "DRAMPUF",
    "CODICSigPUF",
    "DRAMLatencyPUF",
    "PreLatPUF",
    "majority_filter",
    "intersect_filter",
    "jaccard_index",
    "JaccardDistribution",
    "as_position_array",
    "intersect_positions",
    "jaccard_index_arrays",
    "positions_equal",
    "union_positions",
    "PUFEvaluator",
    "PUFQualityResult",
    "TemperaturePoint",
    "quality_pairs_batch",
    "temperature_pairs_batch",
    "aging_pairs_batch",
    "PUFTimingModel",
    "ResponseTimeEstimate",
    "AuthenticationProtocol",
    "AuthenticationResult",
]
