"""PUF quality evaluation harness (Figures 5 and 6, aging study).

The harness reproduces the paper's methodology:

* draw random 8 KB memory segments from the evaluated module population,
* compute **Intra-Jaccard** indices over pairs of responses to the *same*
  challenge and **Inter-Jaccard** indices over pairs of responses to
  *different* challenges (10,000 pairs each in the paper),
* repeat across temperatures (30 C + deltas of 15/25/55 C) for the
  temperature study of Figure 6, and across accelerated-aging steps for the
  aging study.

Evaluation is *shardable*: every pair is computed by a pure kernel
(:func:`quality_pair`, :func:`temperature_pair`, :func:`aging_pair`) on an
independent RNG stream derived from the pair's index through a
:class:`~repro.utils.rng.StreamTree`, so pair order is never load-bearing.
Any contiguous range of pairs can be evaluated in isolation via the
``*_shard`` methods and merged back with
:meth:`~repro.puf.jaccard.JaccardDistribution.merge` -- bit-identical to a
serial evaluation of the full range, for any partition and worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.dram.module import DRAMModule
from repro.puf.base import Challenge, DRAMPUF
from repro.puf.jaccard import JaccardDistribution
from repro.utils.rng import StreamTree

#: Temperatures evaluated in Figure 6 (deltas from the 30 C baseline).
FIGURE6_TEMPERATURE_DELTAS: tuple[float, ...] = (0.0, 15.0, 25.0, 55.0)

#: Factory building a PUF instance for one module (e.g. ``CODICSigPUF``).
PUFFactory = Callable[[DRAMModule], DRAMPUF]


@dataclass
class PUFQualityResult:
    """Intra/Inter Jaccard distributions of one PUF on one module set."""

    puf_name: str
    intra: JaccardDistribution
    inter: JaccardDistribution
    voltage_class: str = "all"

    @property
    def is_repeatable(self) -> bool:
        """Heuristic check: most Intra indices close to one."""
        return self.intra.fraction_above(0.9) >= 0.5

    @property
    def is_unique(self) -> bool:
        """Heuristic check: most Inter indices close to zero."""
        return self.inter.fraction_below(0.1) >= 0.5

    def summary(self) -> dict[str, float]:
        """Compact summary for reports."""
        return {
            "intra_mean": self.intra.mean,
            "intra_std": self.intra.std,
            "inter_mean": self.inter.mean,
            "inter_std": self.inter.std,
        }


@dataclass
class TemperaturePoint:
    """Intra-Jaccard distribution at one temperature delta (Figure 6)."""

    puf_name: str
    temperature_delta_c: float
    intra: JaccardDistribution


# ----------------------------------------------------------------------
# Pure per-pair kernels
# ----------------------------------------------------------------------
def _pick_module(modules: Sequence[DRAMModule], rng: np.random.Generator) -> DRAMModule:
    index = int(rng.integers(0, len(modules)))
    return modules[index]


def quality_pair(
    modules: Sequence[DRAMModule],
    puf_factory: PUFFactory,
    rng: np.random.Generator,
    *,
    segment_bytes: int = 8192,
    temperature_c: float = 30.0,
) -> tuple[float, float]:
    """One Figure 5 pair: ``(intra_jaccard, inter_jaccard)``.

    Intra compares two responses to the same random challenge; Inter compares
    the first response with a response to a different random challenge.  The
    kernel consumes only ``rng``, so a pair's result depends exclusively on
    the stream it is handed.
    """
    module = _pick_module(modules, rng)
    puf = puf_factory(module)
    challenge = Challenge.random(module, rng, segment_bytes)
    first = puf.evaluate(challenge, temperature_c, rng=rng)
    second = puf.evaluate(challenge, temperature_c, rng=rng)
    intra = first.jaccard_with(second)

    other_module = _pick_module(modules, rng)
    other_puf = puf_factory(other_module)
    other_challenge = Challenge.random(other_module, rng, segment_bytes)
    while other_module is module and other_challenge.segment == challenge.segment:
        other_challenge = Challenge.random(other_module, rng, segment_bytes)
    other = other_puf.evaluate(other_challenge, temperature_c, rng=rng)
    return intra, first.jaccard_with(other)


def temperature_pair(
    modules: Sequence[DRAMModule],
    puf_factory: PUFFactory,
    rng: np.random.Generator,
    *,
    delta_c: float,
    segment_bytes: int = 8192,
    base_temperature_c: float = 30.0,
) -> float:
    """One Figure 6 pair: Intra-Jaccard between a ``base_temperature_c``
    reference response and a response taken ``delta_c`` degrees hotter."""
    module = _pick_module(modules, rng)
    puf = puf_factory(module)
    challenge = Challenge.random(module, rng, segment_bytes)
    reference = puf.evaluate(challenge, base_temperature_c, rng=rng)
    heated = puf.evaluate(challenge, base_temperature_c + delta_c, rng=rng)
    return reference.jaccard_with(heated)


def aging_pair(
    modules: Sequence[DRAMModule],
    puf_factory: PUFFactory,
    rng: np.random.Generator,
    *,
    aging_hours: float = 8.0,
    segment_bytes: int = 8192,
) -> float:
    """One aging-study pair: Intra-Jaccard before vs. after accelerated aging.

    Aging stress slightly perturbs the device's variation profile; the chip
    model represents the post-aging readback as an evaluation with a residual
    temperature shift proportional to the stress received.
    """
    module = _pick_module(modules, rng)
    puf = puf_factory(module)
    challenge = Challenge.random(module, rng, segment_bytes)
    before = puf.evaluate(challenge, 30.0, rng=rng)
    residual_delta = min(10.0, aging_hours * 0.25)
    after = puf.evaluate(challenge, 30.0 + residual_delta, rng=rng)
    return before.jaccard_with(after)


@dataclass
class PUFEvaluator:
    """Evaluates PUF quality over a set of modules.

    Every pair index owns an independent stream under the evaluator's
    :class:`~repro.utils.rng.StreamTree`, so the ``*_shard`` methods evaluate
    any ``[start, stop)`` sub-range in isolation and
    :meth:`JaccardDistribution.merge` of the shards (in index order)
    reproduces the full-range result bit-for-bit.
    """

    modules: Sequence[DRAMModule]
    puf_factory: PUFFactory
    pairs: int = 1000
    segment_bytes: int = 8192
    seed: int = 7
    _streams: StreamTree = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.modules:
            raise ValueError("at least one module is required")
        if self.pairs <= 0:
            raise ValueError(f"pairs must be positive, got {self.pairs}")
        if self.segment_bytes <= 0:
            raise ValueError(
                f"segment_bytes must be positive, got {self.segment_bytes}"
            )
        smallest = min(self.modules, key=lambda module: module.capacity_bytes)
        if self.segment_bytes > smallest.capacity_bytes:
            raise ValueError(
                f"segment_bytes={self.segment_bytes} exceeds the smallest "
                f"module {smallest.module_id!r} "
                f"({smallest.capacity_bytes} bytes)"
            )
        self._streams = StreamTree(self.seed).child("puf-evaluator")

    # ------------------------------------------------------------------
    # Quality (Figure 5)
    # ------------------------------------------------------------------
    def quality_shard(
        self, start: int, stop: int, temperature_c: float = 30.0
    ) -> tuple[JaccardDistribution, JaccardDistribution]:
        """``(intra, inter)`` distributions of pairs ``[start, stop)``."""
        self._check_range(start, stop)
        intra = JaccardDistribution()
        inter = JaccardDistribution()
        for index in range(start, stop):
            intra_value, inter_value = quality_pair(
                self.modules,
                self.puf_factory,
                self._streams.rng("quality", index),
                segment_bytes=self.segment_bytes,
                temperature_c=temperature_c,
            )
            intra.add(intra_value)
            inter.add(inter_value)
        return intra, inter

    def quality(
        self, temperature_c: float = 30.0, puf_name: str | None = None
    ) -> PUFQualityResult:
        """Intra/Inter Jaccard distributions at one temperature."""
        intra, inter = self.quality_shard(0, self.pairs, temperature_c)
        name = puf_name or self.puf_factory(self.modules[0]).name
        return PUFQualityResult(puf_name=name, intra=intra, inter=inter)

    # ------------------------------------------------------------------
    # Temperature study (Figure 6)
    # ------------------------------------------------------------------
    def temperature_shard(
        self,
        delta_c: float,
        start: int,
        stop: int,
        base_temperature_c: float = 30.0,
    ) -> JaccardDistribution:
        """Intra distribution of pairs ``[start, stop)`` at one delta."""
        self._check_range(start, stop)
        distribution = JaccardDistribution()
        for index in range(start, stop):
            distribution.add(
                temperature_pair(
                    self.modules,
                    self.puf_factory,
                    self._streams.rng("temperature", float(delta_c), index),
                    delta_c=delta_c,
                    segment_bytes=self.segment_bytes,
                    base_temperature_c=base_temperature_c,
                )
            )
        return distribution

    def temperature_sweep(
        self,
        deltas_c: Sequence[float] = FIGURE6_TEMPERATURE_DELTAS,
        base_temperature_c: float = 30.0,
    ) -> list[TemperaturePoint]:
        """Intra-Jaccard between a 30 C reference response and responses taken
        at elevated temperatures (the Figure 6 methodology)."""
        name = self.puf_factory(self.modules[0]).name
        return [
            TemperaturePoint(
                puf_name=name,
                temperature_delta_c=delta,
                intra=self.temperature_shard(delta, 0, self.pairs, base_temperature_c),
            )
            for delta in deltas_c
        ]

    # ------------------------------------------------------------------
    # Aging study (Section 6.1.1, accelerated aging)
    # ------------------------------------------------------------------
    def aging_shard(
        self, start: int, stop: int, aging_hours: float = 8.0
    ) -> JaccardDistribution:
        """Aging distribution of pairs ``[start, stop)``."""
        self._check_range(start, stop)
        distribution = JaccardDistribution()
        for index in range(start, stop):
            distribution.add(
                aging_pair(
                    self.modules,
                    self.puf_factory,
                    self._streams.rng("aging", index),
                    aging_hours=aging_hours,
                    segment_bytes=self.segment_bytes,
                )
            )
        return distribution

    def aging_study(self, aging_hours: float = 8.0) -> JaccardDistribution:
        """Intra-Jaccard between pre-aging and post-aging responses.

        The model represents the paper's 125 C accelerated-aging stress as a
        residual temperature shift proportional to ``aging_hours`` (see
        :func:`aging_pair`); CODIC-sig responses stay essentially identical
        (most indices equal to 1), as the paper reports.
        """
        return self.aging_shard(0, self.pairs, aging_hours)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_range(self, start: int, stop: int) -> None:
        if not 0 <= start <= stop <= self.pairs:
            raise ValueError(
                f"invalid pair range [{start}, {stop}) for {self.pairs} pairs"
            )
