"""PUF quality evaluation harness (Figures 5 and 6, aging study).

The harness reproduces the paper's methodology:

* draw random 8 KB memory segments from the evaluated module population,
* compute **Intra-Jaccard** indices over pairs of responses to the *same*
  challenge and **Inter-Jaccard** indices over pairs of responses to
  *different* challenges (10,000 pairs each in the paper),
* repeat across temperatures (30 C + deltas of 15/25/55 C) for the
  temperature study of Figure 6, and across accelerated-aging steps for the
  aging study.

Evaluation is *shardable*: every pair is computed by a pure kernel
(:func:`quality_pair`, :func:`temperature_pair`, :func:`aging_pair`) on an
independent RNG stream derived from the pair's index through a
:class:`~repro.utils.rng.StreamTree`, so pair order is never load-bearing.
Any contiguous range of pairs can be evaluated in isolation via the
``*_shard`` methods and merged back with
:meth:`~repro.puf.jaccard.JaccardDistribution.merge` -- bit-identical to a
serial evaluation of the full range, for any partition and worker count.

On top of the scalar kernels sit the **batched pair kernels**
(:func:`quality_pairs_batch`, :func:`temperature_pairs_batch`,
:func:`aging_pairs_batch`): they evaluate a block of pair indices into
preallocated ``float64`` arrays, reusing one PUF instance per module, while
drawing from the same per-pair streams in the same order -- so batch results
are bit-identical to looping the scalar kernel, and the ``*_shard`` methods
(and therefore the engine's ``PUFPairsShardJob``) route through them.

Since the multi-read refactor, every ``puf.evaluate`` call inside these
kernels runs a one-pass multi-read module kernel (hoisted profile memos, one
counting reduction instead of per-pass set intersection; see
:mod:`repro.dram.module`), so the pair kernels inherit the speedup without
changing shape; ``REPRO_PUF_SCALAR=1`` forces the retained scalar reference
loops for byte-identity comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.dram.module import DRAMModule
from repro.puf.base import Challenge, DRAMPUF
from repro.puf.jaccard import JaccardDistribution
from repro.utils.rng import StreamTree

#: Temperatures evaluated in Figure 6 (deltas from the 30 C baseline).
FIGURE6_TEMPERATURE_DELTAS: tuple[float, ...] = (0.0, 15.0, 25.0, 55.0)

#: Factory building a PUF instance for one module (e.g. ``CODICSigPUF``).
PUFFactory = Callable[[DRAMModule], DRAMPUF]

#: Bound on the inter-pair challenge re-draw loop of :func:`quality_pair`.
#: On a healthy population a redraw is only needed when the loop happens to
#: land on the intra challenge again (vanishingly rare); hitting the bound
#: means the population cannot produce a distinct second challenge at all.
MAX_INTER_CHALLENGE_REDRAWS = 256


@dataclass
class PUFQualityResult:
    """Intra/Inter Jaccard distributions of one PUF on one module set."""

    puf_name: str
    intra: JaccardDistribution
    inter: JaccardDistribution
    voltage_class: str = "all"

    @property
    def is_repeatable(self) -> bool:
        """Heuristic check: most Intra indices close to one."""
        return self.intra.fraction_above(0.9) >= 0.5

    @property
    def is_unique(self) -> bool:
        """Heuristic check: most Inter indices close to zero."""
        return self.inter.fraction_below(0.1) >= 0.5

    def summary(self) -> dict[str, float]:
        """Compact summary for reports."""
        return {
            "intra_mean": self.intra.mean,
            "intra_std": self.intra.std,
            "inter_mean": self.inter.mean,
            "inter_std": self.inter.std,
        }


@dataclass
class TemperaturePoint:
    """Intra-Jaccard distribution at one temperature delta (Figure 6)."""

    puf_name: str
    temperature_delta_c: float
    intra: JaccardDistribution


# ----------------------------------------------------------------------
# Pure per-pair kernels
# ----------------------------------------------------------------------
def _pick_module(modules: Sequence[DRAMModule], rng: np.random.Generator) -> DRAMModule:
    index = int(rng.integers(0, len(modules)))
    return modules[index]


def quality_pair(
    modules: Sequence[DRAMModule],
    puf_factory: PUFFactory,
    rng: np.random.Generator,
    *,
    segment_bytes: int = 8192,
    temperature_c: float = 30.0,
) -> tuple[float, float]:
    """One Figure 5 pair: ``(intra_jaccard, inter_jaccard)``.

    Intra compares two responses to the same random challenge; Inter compares
    the first response with a response to a different random challenge.  The
    kernel consumes only ``rng``, so a pair's result depends exclusively on
    the stream it is handed.
    """
    module = _pick_module(modules, rng)
    puf = puf_factory(module)
    challenge = Challenge.random(module, rng, segment_bytes)
    first = puf.evaluate(challenge, temperature_c, rng=rng)
    second = puf.evaluate(challenge, temperature_c, rng=rng)
    intra = first.jaccard_with(second)

    other_module = _pick_module(modules, rng)
    other_puf = puf_factory(other_module)
    other_challenge = Challenge.random(other_module, rng, segment_bytes)
    redraws = 0
    while other_module is module and other_challenge.segment == challenge.segment:
        redraws += 1
        if redraws > MAX_INTER_CHALLENGE_REDRAWS:
            # With >= 2 addressable segments a redraw collides with
            # probability <= 1/2, so reaching the bound is a 2^-256 event --
            # in practice it means the stream is broken, not unlucky.
            raise ValueError(
                "cannot draw a distinct inter-pair challenge after "
                f"{MAX_INTER_CHALLENGE_REDRAWS} attempts on a degenerate "
                "module population; grow the population or the geometry"
            )
        geometry = module.chip_geometry
        if geometry.banks * geometry.rows_per_bank == 1:
            # Single-segment module: redrawing the challenge alone can never
            # produce a distinct segment (the pre-guard code spun forever
            # here, so resampling draws no compatibility concern).
            if len(modules) == 1:
                raise ValueError(
                    "cannot draw a distinct inter-pair challenge: the module "
                    "population is degenerate (a single module with a single "
                    "addressable segment); grow the population or the geometry"
                )
            other_module = _pick_module(modules, rng)
            other_puf = puf_factory(other_module)
        other_challenge = Challenge.random(other_module, rng, segment_bytes)
    other = other_puf.evaluate(other_challenge, temperature_c, rng=rng)
    return intra, first.jaccard_with(other)


def temperature_pair(
    modules: Sequence[DRAMModule],
    puf_factory: PUFFactory,
    rng: np.random.Generator,
    *,
    delta_c: float,
    segment_bytes: int = 8192,
    base_temperature_c: float = 30.0,
) -> float:
    """One Figure 6 pair: Intra-Jaccard between a ``base_temperature_c``
    reference response and a response taken ``delta_c`` degrees hotter."""
    module = _pick_module(modules, rng)
    puf = puf_factory(module)
    challenge = Challenge.random(module, rng, segment_bytes)
    reference = puf.evaluate(challenge, base_temperature_c, rng=rng)
    heated = puf.evaluate(challenge, base_temperature_c + delta_c, rng=rng)
    return reference.jaccard_with(heated)


def aging_pair(
    modules: Sequence[DRAMModule],
    puf_factory: PUFFactory,
    rng: np.random.Generator,
    *,
    aging_hours: float = 8.0,
    segment_bytes: int = 8192,
) -> float:
    """One aging-study pair: Intra-Jaccard before vs. after accelerated aging.

    Aging stress slightly perturbs the device's variation profile; the chip
    model represents the post-aging readback as an evaluation with a residual
    temperature shift proportional to the stress received.
    """
    module = _pick_module(modules, rng)
    puf = puf_factory(module)
    challenge = Challenge.random(module, rng, segment_bytes)
    before = puf.evaluate(challenge, 30.0, rng=rng)
    residual_delta = min(10.0, aging_hours * 0.25)
    after = puf.evaluate(challenge, 30.0 + residual_delta, rng=rng)
    return before.jaccard_with(after)


# ----------------------------------------------------------------------
# Batched pair kernels
# ----------------------------------------------------------------------
def _memoized_factory(puf_factory: PUFFactory) -> PUFFactory:
    """Wrap ``puf_factory`` to build at most one PUF instance per module.

    Safe for batching: when the caller supplies the rng, PUF evaluation
    reads only seed-derived device state and never mutates the instance, so
    reusing one instance across a block of pairs is bit-identical to
    constructing a fresh one per pair.
    """
    instances: dict[int, DRAMPUF] = {}

    def factory(module: DRAMModule) -> DRAMPUF:
        puf = instances.get(id(module))
        if puf is None:
            puf = instances[id(module)] = puf_factory(module)
        return puf

    return factory


def quality_pairs_batch(
    modules: Sequence[DRAMModule],
    puf_factory: PUFFactory,
    rngs: Sequence[np.random.Generator],
    *,
    segment_bytes: int = 8192,
    temperature_c: float = 30.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Figure 5 pairs for a block of per-pair streams: ``(intra, inter)``.

    ``rngs[i]`` is consumed exactly as :func:`quality_pair` would consume it,
    so the returned ``float64`` arrays are bit-identical to evaluating each
    pair with the scalar kernel -- batching only amortizes PUF construction
    (one instance per module) and collects results array-natively.
    """
    factory = _memoized_factory(puf_factory)
    intra = np.empty(len(rngs), dtype=np.float64)
    inter = np.empty(len(rngs), dtype=np.float64)
    for position, rng in enumerate(rngs):
        intra[position], inter[position] = quality_pair(
            modules,
            factory,
            rng,
            segment_bytes=segment_bytes,
            temperature_c=temperature_c,
        )
    return intra, inter


def temperature_pairs_batch(
    modules: Sequence[DRAMModule],
    puf_factory: PUFFactory,
    rngs: Sequence[np.random.Generator],
    *,
    delta_c: float,
    segment_bytes: int = 8192,
    base_temperature_c: float = 30.0,
) -> np.ndarray:
    """Figure 6 pairs for a block of per-pair streams (Intra indices)."""
    factory = _memoized_factory(puf_factory)
    intra = np.empty(len(rngs), dtype=np.float64)
    for position, rng in enumerate(rngs):
        intra[position] = temperature_pair(
            modules,
            factory,
            rng,
            delta_c=delta_c,
            segment_bytes=segment_bytes,
            base_temperature_c=base_temperature_c,
        )
    return intra


def aging_pairs_batch(
    modules: Sequence[DRAMModule],
    puf_factory: PUFFactory,
    rngs: Sequence[np.random.Generator],
    *,
    aging_hours: float = 8.0,
    segment_bytes: int = 8192,
) -> np.ndarray:
    """Aging-study pairs for a block of per-pair streams (Intra indices)."""
    factory = _memoized_factory(puf_factory)
    intra = np.empty(len(rngs), dtype=np.float64)
    for position, rng in enumerate(rngs):
        intra[position] = aging_pair(
            modules,
            factory,
            rng,
            aging_hours=aging_hours,
            segment_bytes=segment_bytes,
        )
    return intra


@dataclass
class PUFEvaluator:
    """Evaluates PUF quality over a set of modules.

    Every pair index owns an independent stream under the evaluator's
    :class:`~repro.utils.rng.StreamTree`, so the ``*_shard`` methods evaluate
    any ``[start, stop)`` sub-range in isolation and
    :meth:`JaccardDistribution.merge` of the shards (in index order)
    reproduces the full-range result bit-for-bit.
    """

    modules: Sequence[DRAMModule]
    puf_factory: PUFFactory
    pairs: int = 1000
    segment_bytes: int = 8192
    seed: int = 7
    _streams: StreamTree = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.modules:
            raise ValueError("at least one module is required")
        if self.pairs <= 0:
            raise ValueError(f"pairs must be positive, got {self.pairs}")
        if self.segment_bytes <= 0:
            raise ValueError(
                f"segment_bytes must be positive, got {self.segment_bytes}"
            )
        smallest = min(self.modules, key=lambda module: module.capacity_bytes)
        if self.segment_bytes > smallest.capacity_bytes:
            raise ValueError(
                f"segment_bytes={self.segment_bytes} exceeds the smallest "
                f"module {smallest.module_id!r} "
                f"({smallest.capacity_bytes} bytes)"
            )
        self._streams = StreamTree(self.seed).child("puf-evaluator")

    # ------------------------------------------------------------------
    # Quality (Figure 5)
    # ------------------------------------------------------------------
    def quality_shard(
        self, start: int, stop: int, temperature_c: float = 30.0
    ) -> tuple[JaccardDistribution, JaccardDistribution]:
        """``(intra, inter)`` distributions of pairs ``[start, stop)``.

        Routed through :func:`quality_pairs_batch` on the per-pair streams of
        the shard's index range (bit-identical to the scalar kernel loop).
        """
        self._check_range(start, stop)
        intra, inter = quality_pairs_batch(
            self.modules,
            self.puf_factory,
            self._pair_rngs("quality", start, stop),
            segment_bytes=self.segment_bytes,
            temperature_c=temperature_c,
        )
        return (
            JaccardDistribution.from_values(intra),
            JaccardDistribution.from_values(inter),
        )

    def quality(
        self, temperature_c: float = 30.0, puf_name: str | None = None
    ) -> PUFQualityResult:
        """Intra/Inter Jaccard distributions at one temperature."""
        intra, inter = self.quality_shard(0, self.pairs, temperature_c)
        name = puf_name or self.puf_factory(self.modules[0]).name
        return PUFQualityResult(puf_name=name, intra=intra, inter=inter)

    # ------------------------------------------------------------------
    # Temperature study (Figure 6)
    # ------------------------------------------------------------------
    def temperature_shard(
        self,
        delta_c: float,
        start: int,
        stop: int,
        base_temperature_c: float = 30.0,
    ) -> JaccardDistribution:
        """Intra distribution of pairs ``[start, stop)`` at one delta."""
        self._check_range(start, stop)
        intra = temperature_pairs_batch(
            self.modules,
            self.puf_factory,
            self._pair_rngs("temperature", start, stop, float(delta_c)),
            delta_c=delta_c,
            segment_bytes=self.segment_bytes,
            base_temperature_c=base_temperature_c,
        )
        return JaccardDistribution.from_values(intra)

    def temperature_sweep(
        self,
        deltas_c: Sequence[float] = FIGURE6_TEMPERATURE_DELTAS,
        base_temperature_c: float = 30.0,
    ) -> list[TemperaturePoint]:
        """Intra-Jaccard between a 30 C reference response and responses taken
        at elevated temperatures (the Figure 6 methodology)."""
        name = self.puf_factory(self.modules[0]).name
        return [
            TemperaturePoint(
                puf_name=name,
                temperature_delta_c=delta,
                intra=self.temperature_shard(delta, 0, self.pairs, base_temperature_c),
            )
            for delta in deltas_c
        ]

    # ------------------------------------------------------------------
    # Aging study (Section 6.1.1, accelerated aging)
    # ------------------------------------------------------------------
    def aging_shard(
        self, start: int, stop: int, aging_hours: float = 8.0
    ) -> JaccardDistribution:
        """Aging distribution of pairs ``[start, stop)``."""
        self._check_range(start, stop)
        intra = aging_pairs_batch(
            self.modules,
            self.puf_factory,
            self._pair_rngs("aging", start, stop),
            aging_hours=aging_hours,
            segment_bytes=self.segment_bytes,
        )
        return JaccardDistribution.from_values(intra)

    def aging_study(self, aging_hours: float = 8.0) -> JaccardDistribution:
        """Intra-Jaccard between pre-aging and post-aging responses.

        The model represents the paper's 125 C accelerated-aging stress as a
        residual temperature shift proportional to ``aging_hours`` (see
        :func:`aging_pair`); CODIC-sig responses stay essentially identical
        (most indices equal to 1), as the paper reports.
        """
        return self.aging_shard(0, self.pairs, aging_hours)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _pair_rngs(
        self, label: str, start: int, stop: int, *extra_labels: object
    ) -> list[np.random.Generator]:
        """Per-pair streams of an index range (the same streams the scalar
        path hands ``<label>_pair`` one at a time)."""
        subtree = self._streams.child(label, *extra_labels)
        return [subtree.rng(index) for index in range(start, stop)]

    def _check_range(self, start: int, stop: int) -> None:
        if not 0 <= start <= stop <= self.pairs:
            raise ValueError(
                f"invalid pair range [{start}, {stop}) for {self.pairs} pairs"
            )
