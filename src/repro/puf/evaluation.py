"""PUF quality evaluation harness (Figures 5 and 6, aging study).

The harness reproduces the paper's methodology:

* draw random 8 KB memory segments from the evaluated module population,
* compute **Intra-Jaccard** indices over pairs of responses to the *same*
  challenge and **Inter-Jaccard** indices over pairs of responses to
  *different* challenges (10,000 pairs each in the paper),
* repeat across temperatures (30 C + deltas of 15/25/55 C) for the
  temperature study of Figure 6, and across accelerated-aging steps for the
  aging study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.dram.module import DRAMModule
from repro.puf.base import Challenge, DRAMPUF
from repro.puf.jaccard import JaccardDistribution
from repro.utils.rng import make_rng

#: Temperatures evaluated in Figure 6 (deltas from the 30 C baseline).
FIGURE6_TEMPERATURE_DELTAS: tuple[float, ...] = (0.0, 15.0, 25.0, 55.0)


@dataclass
class PUFQualityResult:
    """Intra/Inter Jaccard distributions of one PUF on one module set."""

    puf_name: str
    intra: JaccardDistribution
    inter: JaccardDistribution
    voltage_class: str = "all"

    @property
    def is_repeatable(self) -> bool:
        """Heuristic check: most Intra indices close to one."""
        return self.intra.fraction_above(0.9) >= 0.5

    @property
    def is_unique(self) -> bool:
        """Heuristic check: most Inter indices close to zero."""
        return self.inter.fraction_below(0.1) >= 0.5

    def summary(self) -> dict[str, float]:
        """Compact summary for reports."""
        return {
            "intra_mean": self.intra.mean,
            "intra_std": self.intra.std,
            "inter_mean": self.inter.mean,
            "inter_std": self.inter.std,
        }


@dataclass
class TemperaturePoint:
    """Intra-Jaccard distribution at one temperature delta (Figure 6)."""

    puf_name: str
    temperature_delta_c: float
    intra: JaccardDistribution


@dataclass
class PUFEvaluator:
    """Evaluates PUF quality over a set of modules."""

    modules: Sequence[DRAMModule]
    #: Factory building a PUF instance for one module (e.g. ``CODICSigPUF``).
    puf_factory: Callable[[DRAMModule], DRAMPUF]
    pairs: int = 1000
    segment_bytes: int = 8192
    seed: int = 7
    _rng: np.random.Generator = field(init=False)

    def __post_init__(self) -> None:
        if not self.modules:
            raise ValueError("at least one module is required")
        if self.pairs <= 0:
            raise ValueError("pairs must be positive")
        self._rng = make_rng(self.seed, "puf-evaluator")

    # ------------------------------------------------------------------
    # Quality (Figure 5)
    # ------------------------------------------------------------------
    def quality(self, temperature_c: float = 30.0, puf_name: str | None = None) -> PUFQualityResult:
        """Intra/Inter Jaccard distributions at one temperature."""
        intra = JaccardDistribution()
        inter = JaccardDistribution()
        for _ in range(self.pairs):
            module = self._pick_module()
            puf = self.puf_factory(module)
            challenge = Challenge.random(module, self._rng, self.segment_bytes)
            first = puf.evaluate(challenge, temperature_c, rng=self._rng)
            second = puf.evaluate(challenge, temperature_c, rng=self._rng)
            intra.add(first.jaccard_with(second))

            other_module = self._pick_module()
            other_puf = self.puf_factory(other_module)
            other_challenge = Challenge.random(other_module, self._rng, self.segment_bytes)
            while (
                other_module is module
                and other_challenge.segment == challenge.segment
            ):
                other_challenge = Challenge.random(
                    other_module, self._rng, self.segment_bytes
                )
            other = other_puf.evaluate(other_challenge, temperature_c, rng=self._rng)
            inter.add(first.jaccard_with(other))
        name = puf_name or self.puf_factory(self.modules[0]).name
        return PUFQualityResult(puf_name=name, intra=intra, inter=inter)

    # ------------------------------------------------------------------
    # Temperature study (Figure 6)
    # ------------------------------------------------------------------
    def temperature_sweep(
        self,
        deltas_c: Sequence[float] = FIGURE6_TEMPERATURE_DELTAS,
        base_temperature_c: float = 30.0,
    ) -> list[TemperaturePoint]:
        """Intra-Jaccard between a 30 C reference response and responses taken
        at elevated temperatures (the Figure 6 methodology)."""
        points: list[TemperaturePoint] = []
        name = self.puf_factory(self.modules[0]).name
        for delta in deltas_c:
            distribution = JaccardDistribution()
            for _ in range(self.pairs):
                module = self._pick_module()
                puf = self.puf_factory(module)
                challenge = Challenge.random(module, self._rng, self.segment_bytes)
                reference = puf.evaluate(challenge, base_temperature_c, rng=self._rng)
                heated = puf.evaluate(
                    challenge, base_temperature_c + delta, rng=self._rng
                )
                distribution.add(reference.jaccard_with(heated))
            points.append(
                TemperaturePoint(
                    puf_name=name, temperature_delta_c=delta, intra=distribution
                )
            )
        return points

    # ------------------------------------------------------------------
    # Aging study (Section 6.1.1, accelerated aging)
    # ------------------------------------------------------------------
    def aging_study(
        self, aging_hours: float = 8.0, aging_temperature_c: float = 125.0
    ) -> JaccardDistribution:
        """Intra-Jaccard between pre-aging and post-aging responses.

        Accelerated aging slightly perturbs the device's variation profile;
        the chip model represents this as an elevated-temperature evaluation,
        so the CODIC-sig responses stay essentially identical (most indices
        equal to 1), as the paper reports.
        """
        distribution = JaccardDistribution()
        for _ in range(self.pairs):
            module = self._pick_module()
            puf = self.puf_factory(module)
            challenge = Challenge.random(module, self._rng, self.segment_bytes)
            before = puf.evaluate(challenge, 30.0, rng=self._rng)
            # Aging stress at ``aging_temperature_c`` for ``aging_hours``;
            # responses are read back at nominal temperature afterwards, with
            # a residual shift proportional to the stress received.
            residual_delta = min(10.0, aging_hours * 0.25)
            after = puf.evaluate(challenge, 30.0 + residual_delta, rng=self._rng)
            distribution.add(before.jaccard_with(after))
        return distribution

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _pick_module(self) -> DRAMModule:
        index = int(self._rng.integers(0, len(self.modules)))
        return self.modules[index]
