"""PUF response-time model (Table 4).

The paper measures end-to-end evaluation time of each PUF on its SoftMC-based
infrastructure for 8 KB segments:

=====================  ==============  ==============
PUF                     w/ filter       w/o filter
=====================  ==============  ==============
DRAM Latency PUF        88.2 ms         --
PreLatPUF               7.95 ms         1.59 ms
CODIC-sig PUF           4.41 ms         0.88 ms
=====================  ==============  ==============

The model decomposes one evaluation into (a) the number of raw segment passes
the filtering mechanism requires, and (b) the time of one pass, which is the
sum of DRAM command time and the per-access host-interface overhead of the
memory-controller infrastructure (SoftMC issues commands one at a time from
the host, which dominates the absolute numbers).  One PreLatPUF pass needs an
extra write-initialization plus precharge/activate pair per row, making it
~1.8x slower per pass than the CODIC-sig and reduced-tRCD passes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import DDR3_1600_11_11_11, TimingParameters
from repro.utils.units import NS_PER_MS


@dataclass(frozen=True)
class ResponseTimeEstimate:
    """Evaluation-time estimate for one PUF configuration."""

    puf_name: str
    passes: int
    pass_time_ns: float

    @property
    def total_ns(self) -> float:
        """Total evaluation time in nanoseconds."""
        return self.passes * self.pass_time_ns

    @property
    def total_ms(self) -> float:
        """Total evaluation time in milliseconds."""
        return self.total_ns / NS_PER_MS


@dataclass(frozen=True)
class PUFTimingModel:
    """Response-time model for the three evaluated PUFs."""

    timing: TimingParameters = DDR3_1600_11_11_11
    segment_bytes: int = 8192
    #: Module row size (the paper's modules have 8 KB rows, so a segment is
    #: one row).
    row_bytes: int = 8192
    #: Bytes transferred per column access.
    column_bytes: int = 64
    #: Host-interface overhead per column access of the SoftMC-class
    #: infrastructure used for the real-chip measurements.  Calibrated so
    #: that one read pass over an 8 KB segment takes ~0.88 ms, matching the
    #: paper's measured single-pass times.
    interface_overhead_per_access_ns: float = 6_800.0

    # ------------------------------------------------------------------
    # Pass-time building blocks
    # ------------------------------------------------------------------
    @property
    def rows_per_segment(self) -> int:
        """Number of DRAM rows covered by one segment."""
        return max(1, self.segment_bytes // self.row_bytes)

    @property
    def accesses_per_segment(self) -> int:
        """Number of column accesses needed to read one segment."""
        return max(1, self.segment_bytes // self.column_bytes)

    def _readout_time_ns(self) -> float:
        """Time to stream one segment out of DRAM (ACT + reads + PRE + host)."""
        t = self.timing
        per_row = t.tRCD_ns + t.tRP_ns
        per_access = t.burst_time_ns + self.interface_overhead_per_access_ns
        return self.rows_per_segment * per_row + self.accesses_per_segment * per_access

    def _write_init_time_ns(self) -> float:
        """Time to write known data into one segment (used by PreLatPUF)."""
        t = self.timing
        per_row = t.tRCD_ns + t.tWR_ns + t.tRP_ns
        per_access = t.burst_time_ns + self.interface_overhead_per_access_ns * 0.8
        return self.rows_per_segment * per_row + self.accesses_per_segment * per_access

    # ------------------------------------------------------------------
    # Per-PUF estimates
    # ------------------------------------------------------------------
    def codic_sig(self, filter_passes: int = 5) -> ResponseTimeEstimate:
        """CODIC-sig PUF: one CODIC command + activation per row, then readout."""
        codic_overhead = self.rows_per_segment * (35.0 + self.timing.tRP_ns)
        pass_time = codic_overhead + self._readout_time_ns()
        return ResponseTimeEstimate(
            puf_name="CODIC-sig PUF", passes=filter_passes, pass_time_ns=pass_time
        )

    def dram_latency_puf(self, filter_reads: int = 100) -> ResponseTimeEstimate:
        """DRAM Latency PUF: reduced-tRCD readout, repeated ``filter_reads`` times."""
        pass_time = self._readout_time_ns()
        return ResponseTimeEstimate(
            puf_name="DRAM Latency PUF", passes=filter_reads, pass_time_ns=pass_time
        )

    def prelat_puf(self, filter_passes: int = 5) -> ResponseTimeEstimate:
        """PreLatPUF: write-initialize, reduced-tRP access, then readout."""
        precharge_stress = self.rows_per_segment * (self.timing.tRAS_ns + 2.5)
        pass_time = self._write_init_time_ns() + precharge_stress + self._readout_time_ns()
        return ResponseTimeEstimate(
            puf_name="PreLatPUF", passes=filter_passes, pass_time_ns=pass_time
        )

    def table4(
        self, latency_filter_reads: int = 100, light_filter_passes: int = 5
    ) -> dict[str, dict[str, float]]:
        """All Table 4 entries, in milliseconds.

        The defaults reproduce the paper's configuration (100 reduced-tRCD
        reads for the DRAM Latency PUF, 5-pass lightweight filters); other
        filter settings summarize the corresponding ablations.
        """
        return {
            "DRAM Latency PUF": {
                "with_filter_ms": self.dram_latency_puf(latency_filter_reads).total_ms,
            },
            "PreLatPUF": {
                "with_filter_ms": self.prelat_puf(light_filter_passes).total_ms,
                "without_filter_ms": self.prelat_puf(1).total_ms,
            },
            "CODIC-sig PUF": {
                "with_filter_ms": self.codic_sig(light_filter_passes).total_ms,
                "without_filter_ms": self.codic_sig(1).total_ms,
            },
        }
