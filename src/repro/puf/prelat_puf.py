"""The PreLatPUF baseline (Talukder et al., IEEE Access 2019).

PreLatPUF generates responses from failures induced by a strongly reduced
precharge latency (tRP = 2.5 ns in the paper's comparison).  The failures are
dominated by per-column sense-amplifier behaviour, which makes the responses
very repeatable (good Intra-Jaccard) but poorly unique across segments of the
same device (dispersed Inter-Jaccard), exactly the trade-off visible in the
paper's Figure 5.

As in the paper's methodology, the per-cell selection mechanism proposed by
the PreLatPUF authors is *not* applied: the goal is to compare the quality of
the underlying failure mechanisms under the same conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dram.module import DRAMModule
from repro.puf.base import Challenge, PUFResponse
from repro.puf.filtering import intersect_filter, scalar_mode_forced
from repro.utils.rng import make_rng


@dataclass
class PreLatPUF:
    """Reduced-tRP failure PUF with lightweight filtering."""

    module: DRAMModule
    trp_ns: float = 2.5
    #: Number of repeated evaluations combined by the lightweight filter
    #: (``1`` disables filtering).
    filter_passes: int = 5
    name: str = "PreLatPUF"
    noise_seed: int = 303

    #: Count of default-seeded raw evaluations; bookkeeping only (excluded
    #: from equality/repr, untouched when the caller supplies an rng).
    _evaluations: int = field(default=0, compare=False, repr=False)

    def evaluation_passes(self) -> int:
        """Raw segment evaluations needed per response."""
        return self.filter_passes

    def evaluate(
        self,
        challenge: Challenge,
        temperature_c: float = 30.0,
        rng: np.random.Generator | None = None,
    ) -> PUFResponse:
        """Evaluate the PUF on one challenge.

        Routes through the coalesced multi-read kernel
        (:meth:`repro.dram.module.DRAMModule.rp_response_multi`), which is
        bit-identical to the retained :meth:`evaluate_scalar` loop;
        ``REPRO_PUF_SCALAR=1`` forces the scalar path process-wide.
        """
        if scalar_mode_forced():
            return self.evaluate_scalar(challenge, temperature_c, rng)
        passes = self.filter_passes
        if rng is None:
            # Advance the bookkeeping counter exactly as the scalar loop's
            # per-pass `_single_pass` calls would, so default-seeded noise
            # sequences stay reproducible across both paths.
            rngs = []
            for pass_index in range(passes):
                self._evaluations += 1
                rngs.append(
                    make_rng(self.noise_seed, "prelat-puf", self._evaluations, pass_index)
                )
        else:
            rngs = [rng] * passes
        positions = self.module.rp_response_multi(
            challenge.segment,
            passes,
            trp_ns=self.trp_ns,
            temperature_c=temperature_c,
            rngs=rngs,
        )
        # Freshly built and unaliased: freeze in place so PUFResponse takes
        # the zero-copy fast path.
        positions.setflags(write=False)
        return PUFResponse(
            position_array=positions, challenge=challenge, temperature_c=temperature_c
        )

    def evaluate_scalar(
        self,
        challenge: Challenge,
        temperature_c: float = 30.0,
        rng: np.random.Generator | None = None,
    ) -> PUFResponse:
        """Scalar reference loop: per-pass reads reduced by `intersect_filter`."""
        observations = [
            self._single_pass(challenge, temperature_c, rng, pass_index)
            for pass_index in range(self.filter_passes)
        ]
        if len(observations) == 1:
            positions = observations[0]
        else:
            positions = intersect_filter(observations)
        # Freshly built and unaliased: freeze in place so PUFResponse takes
        # the zero-copy fast path.
        positions.setflags(write=False)
        return PUFResponse(
            position_array=positions, challenge=challenge, temperature_c=temperature_c
        )

    def _single_pass(
        self,
        challenge: Challenge,
        temperature_c: float,
        rng: np.random.Generator | None,
        pass_index: int,
    ) -> np.ndarray:
        if rng is None:
            self._evaluations += 1
            noise_rng = make_rng(
                self.noise_seed, "prelat-puf", self._evaluations, pass_index
            )
        else:
            noise_rng = rng
        return self.module.rp_response(
            challenge.segment,
            trp_ns=self.trp_ns,
            temperature_c=temperature_c,
            rng=noise_rng,
        )
