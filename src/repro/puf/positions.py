"""Sorted-array representation of PUF position sets.

A PUF response is mathematically a *set* of bit positions, but the pipeline
represents it as a **sorted, duplicate-free ``np.int64`` array** from the
chip layer all the way to the Jaccard histogram: set algebra becomes
``np.intersect1d``/``np.union1d`` over sorted arrays, which is what makes the
pair kernels fast enough to saturate the process-level sharding added in
PR 2.  The helpers here are the one place that defines the canonical form
and the set operations every layer shares.

All functions preserve *value identity* with the frozenset formulation: the
Jaccard index is computed as an integer-cardinality ratio, so array-native
and set-native evaluation produce bit-identical floats (enforced by property
tests against a frozenset reference implementation).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

#: Anything accepted as a collection of bit positions.
PositionsLike = "np.ndarray | frozenset[int] | set[int] | Iterable[int]"


def as_position_array(positions: PositionsLike) -> np.ndarray:
    """Canonicalize ``positions`` into a sorted, unique ``np.int64`` array.

    Arrays produced by the chip/module layer are already sorted and unique
    and pass through with at most a dtype cast; sets and other iterables are
    materialized and deduplicated.  The result is always safe for
    ``assume_unique=True`` set operations.
    """
    if isinstance(positions, np.ndarray):
        if positions.size == 0:
            return np.empty(0, dtype=np.int64)
        array = _as_int64(positions)
        if array.ndim != 1:
            raise ValueError(
                f"position arrays must be one-dimensional, got shape {array.shape}"
            )
        # Producers hand out sorted unique arrays; only re-canonicalize when
        # an externally built array violates that.
        if array.size > 1 and not _is_sorted_unique(array):
            array = np.unique(array)
        return array
    array = np.asarray(tuple(positions))
    if array.size == 0:
        return np.empty(0, dtype=np.int64)
    array = _as_int64(array)
    return np.unique(array)


def _as_int64(array: np.ndarray) -> np.ndarray:
    """Cast an integer-kind array to ``int64``; reject non-integer dtypes.

    A silent ``astype`` would truncate float positions (``0.7 -> 0``) and
    corrupt the set semantics, so non-integer input (floats, booleans --
    e.g. a mask passed where indices were meant) fails loudly instead.
    """
    if not np.issubdtype(array.dtype, np.integer):
        raise ValueError(f"positions must be integers, got dtype {array.dtype}")
    return array.astype(np.int64, copy=False)


def _is_sorted_unique(array: np.ndarray) -> bool:
    """True when ``array`` is strictly increasing (hence sorted and unique)."""
    return bool(np.all(array[1:] > array[:-1]))


def check_canonical(array: np.ndarray) -> np.ndarray:
    """Validate that ``array`` is in canonical form; raise ``ValueError`` if not.

    Canonical form is the contract every fast path in the pipeline assumes:
    one-dimensional, ``int64``, strictly increasing.  Returns the (dtype-cast)
    array on success.
    """
    array = _as_int64(array)
    if array.ndim != 1:
        raise ValueError(
            f"position arrays must be one-dimensional, got shape {array.shape}"
        )
    if array.size > 1 and not _is_sorted_unique(array):
        raise ValueError(
            "position array must be sorted and duplicate-free; "
            "use as_position_array to canonicalize arbitrary input"
        )
    return array


def intersect_positions(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Intersection of two canonical position arrays (sorted unique)."""
    return np.intersect1d(first, second, assume_unique=True)


def union_positions(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Union of two canonical position arrays (sorted unique)."""
    return np.union1d(first, second)


def intersection_size(first: np.ndarray, second: np.ndarray) -> int:
    """``|A n B|`` of two canonical position arrays.

    The innermost operation of every pair kernel, so it avoids
    ``np.intersect1d``'s concatenate-and-sort: binary-searching the smaller
    array into the larger one costs ``O(m log n)`` and allocates only the
    index array.
    """
    if first.size > second.size:
        first, second = second, first
    if first.size == 0:
        return 0
    indices = np.searchsorted(second, first)
    found = indices < second.size
    return int(np.count_nonzero(second[indices[found]] == first[found]))


def jaccard_index_arrays(first: np.ndarray, second: np.ndarray) -> float:
    """Jaccard similarity of two canonical position arrays.

    Two empty sets are treated as identical (index 1.0), matching the
    frozenset convention.  The value is the exact integer ratio
    ``|A n B| / (|A| + |B| - |A n B|)``, bit-identical to the set version.
    """
    intersection = intersection_size(first, second)
    union = int(first.size) + int(second.size) - intersection
    if union == 0:
        return 1.0
    return intersection / union


def positions_equal(first: np.ndarray, second: np.ndarray) -> bool:
    """Exact set equality of two canonical position arrays."""
    return first.size == second.size and bool(np.array_equal(first, second))


def concat_position_arrays(
    arrays: "Iterable[np.ndarray]",
) -> tuple[np.ndarray, np.ndarray]:
    """Pack canonical position arrays into ``(buffer, offsets)`` batch form.

    The batch form every ``*_batch`` kernel consumes: one concatenated
    ``int64`` buffer plus an ``offsets`` array of length ``n + 1`` such that
    slice ``i`` is ``buffer[offsets[i]:offsets[i + 1]]``.
    """
    arrays = list(arrays)
    offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
    if arrays:
        np.cumsum([array.size for array in arrays], out=offsets[1:])
        buffer = (
            np.concatenate(arrays)
            if offsets[-1]
            else np.empty(0, dtype=np.int64)
        )
    else:
        buffer = np.empty(0, dtype=np.int64)
    return buffer, offsets


def intersection_size_batch(
    first: np.ndarray,
    first_offsets: np.ndarray,
    second: np.ndarray,
    second_offsets: np.ndarray,
) -> np.ndarray:
    """Per-pair ``|A_i n B_i|`` over two batches of canonical arrays.

    Both batches are in the ``(buffer, offsets)`` form of
    :func:`concat_position_arrays` and must hold the same number of slices.
    Instead of looping :func:`intersection_size` per pair, every slice is
    shifted into its own disjoint value range (``pair_index * span``), which
    turns the whole batch into one global sorted-array membership problem:
    a single ``searchsorted`` plus a ``bincount`` of the hits.  Counts are
    exact integers, identical to the scalar kernel's.
    """
    pairs = int(first_offsets.size) - 1
    if int(second_offsets.size) - 1 != pairs:
        raise ValueError(
            f"batch size mismatch: {pairs} first slices vs "
            f"{int(second_offsets.size) - 1} second slices"
        )
    counts = np.zeros(pairs, dtype=np.int64)
    if first.size == 0 or second.size == 0:
        return counts
    low = int(min(first.min(), second.min()))
    span = int(max(first.max(), second.max())) - low + 1
    pair_ids = np.arange(pairs, dtype=np.int64)
    first_ids = np.repeat(pair_ids, np.diff(first_offsets))
    second_ids = np.repeat(pair_ids, np.diff(second_offsets))
    # Within-pair slices are strictly increasing and pair blocks are shifted
    # by disjoint multiples of span, so both shifted buffers are globally
    # sorted -- the precondition for one searchsorted over everything.
    shifted_first = (first - low) + first_ids * span
    shifted_second = (second - low) + second_ids * span
    indices = np.searchsorted(shifted_first, shifted_second)
    found = indices < shifted_first.size
    matched = second_ids[found][shifted_first[indices[found]] == shifted_second[found]]
    if matched.size:
        counts += np.bincount(matched, minlength=pairs)
    return counts


def jaccard_index_batch(
    first: np.ndarray,
    first_offsets: np.ndarray,
    second: np.ndarray,
    second_offsets: np.ndarray,
) -> np.ndarray:
    """Per-pair Jaccard similarity over two batches of canonical arrays.

    Bit-identical to looping :func:`jaccard_index_arrays` over the pairs:
    intersection counts are exact integers and the final ratio is the same
    ``int64 / int64`` float64 division (both operands far below 2**53), with
    the empty-vs-empty pair reporting 1.0 exactly like the scalar path.
    """
    intersections = intersection_size_batch(
        first, first_offsets, second, second_offsets
    )
    unions = np.diff(first_offsets) + np.diff(second_offsets) - intersections
    result = np.ones(intersections.size, dtype=np.float64)
    occupied = unions > 0
    result[occupied] = intersections[occupied] / unions[occupied]
    return result
