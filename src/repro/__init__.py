"""repro -- a reproduction of CODIC (ISCA 2021).

CODIC is a low-cost DRAM substrate that enables fine-grained, programmable
control over four internal DRAM circuit timing signals (``wl``, ``EQ``,
``sense_p``, ``sense_n``).  This package reproduces the paper end-to-end:

* :mod:`repro.core`        -- the CODIC substrate itself (signal schedules,
  command variants, delay elements, mode registers).
* :mod:`repro.circuit`     -- a behavioral analog model of the DRAM cell /
  bitline / sense-amplifier circuit (the SPICE substitute).
* :mod:`repro.dram`        -- DDR3 device model: geometry, timings, banks,
  chips with per-cell process variation, modules, and the paper's 136-chip
  population.
* :mod:`repro.memctrl`     -- a Ramulator-style memory controller and system
  simulator (FR-FCFS scheduling, in-order core, caches, trace-driven).
* :mod:`repro.power`       -- DRAMPower-style per-command energy model.
* :mod:`repro.puf`         -- the CODIC-sig PUF and the DRAM Latency PUF /
  PreLatPUF baselines, with Jaccard-index evaluation.
* :mod:`repro.rng`         -- Von Neumann extractor and the NIST SP 800-22
  statistical test suite.
* :mod:`repro.coldboot`    -- the self-destruction cold-boot-attack
  prevention mechanism and its baselines (TCG, RowClone, LISA-clone) and
  cipher-based alternatives.
* :mod:`repro.dealloc`     -- CODIC-based secure deallocation and its
  software / RowClone / LISA baselines.
* :mod:`repro.experiments` -- drivers that regenerate every table and figure
  of the paper's evaluation.

Quickstart
----------
>>> from repro import CODICSubstrate
>>> substrate = CODICSubstrate()
>>> _ = substrate.configure("CODIC-sig")      # program the mode registers
>>> result = substrate.simulate_cell(initial_cell_voltage=1.0)
>>> result.cell_at_precharge                  # the cell was driven to Vdd/2
True
"""

from repro.core import (
    CODICCommand,
    CODICSubstrate,
    CODICVariant,
    SignalSchedule,
    VariantFunction,
    VariantLibrary,
    standard_variants,
)
from repro.circuit import CellCircuitSimulator, MonteCarloEngine
from repro.dram import DRAMChip, DRAMModule, paper_population
from repro.power import CommandEnergyModel

__version__ = "1.0.0"

__all__ = [
    "CODICCommand",
    "CODICSubstrate",
    "CODICVariant",
    "SignalSchedule",
    "VariantFunction",
    "VariantLibrary",
    "standard_variants",
    "CellCircuitSimulator",
    "MonteCarloEngine",
    "DRAMChip",
    "DRAMModule",
    "paper_population",
    "CommandEnergyModel",
    "__version__",
]
