"""Setuptools shim.

The offline environment ships setuptools but not the ``wheel`` package, so
PEP 660 editable installs fail with "invalid command 'bdist_wheel'".  This
shim lets ``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path, which needs no wheel support.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
