#!/usr/bin/env python3
"""Cold-boot attack with and without CODIC self-destruction (Section 5.2).

The example plants a secret key in a simulated DRAM module, power-cycles the
module the way a cold-boot attacker would, and reads it back twice: once on an
unprotected module and once on a module whose power-on FSM runs CODIC-based
self-destruction before accepting any command.  It then prints the Figure 7
destruction-time sweep for all four mechanisms.

Run with:  python examples/coldboot_selfdestruct.py
"""

from __future__ import annotations

import numpy as np

from repro.coldboot import ColdBootAttack, DestructionSweep
from repro.core.variants import standard_variants
from repro.dram import DRAMModule
from repro.dram.geometry import DRAMGeometry
from repro.utils.tables import render_table
from repro.utils.units import format_time_ns


def demo_attack() -> None:
    geometry = DRAMGeometry(banks=8, rows_per_bank=256, row_bits=8192)
    victim = DRAMModule("victim", chip_geometry=geometry, seed=11)
    attack = ColdBootAttack(victim, power_off_seconds=0.5, temperature_c=20.0, seed=5)

    segment = victim.random_segment(np.random.default_rng(1))
    secret = attack.plant_secret(segment)
    print(f"Planted a {secret.size}-bit secret in segment "
          f"(bank={segment.bank}, row={segment.row}).")

    unprotected = attack.execute(segment, secret)
    print(f"Unprotected module : attacker recovers "
          f"{unprotected.recovery_rate * 100:.1f} % of the secret "
          f"-> attack {'SUCCEEDS' if unprotected.succeeded() else 'fails'}")

    # Protected module: the power-on FSM walks every row with CODIC-det
    # before the (attacker-controlled) memory controller gets access.
    protected = DRAMModule("protected", chip_geometry=geometry, seed=11)
    defended_attack = ColdBootAttack(protected, power_off_seconds=0.5,
                                     temperature_c=20.0, seed=5)
    defended_attack.module.write_segment(segment, secret)
    codic_det = standard_variants()["CODIC-det"].schedule
    protected.execute_codic(codic_det, segment)

    defended = defended_attack.execute(segment, secret, defence_ran=True)
    print(f"Self-destructing module: attacker recovers "
          f"{defended.recovery_rate * 100:.1f} % of the secret "
          f"-> attack {'succeeds' if defended.succeeded() else 'FAILS'}")
    print()


def figure7_sweep() -> None:
    sweep = DestructionSweep()
    rows = []
    for point in sweep.run():
        rows.append(
            [
                point.capacity_label,
                format_time_ns(point.result("TCG").destruction_time_ns),
                format_time_ns(point.result("LISA-clone").destruction_time_ns),
                format_time_ns(point.result("RowClone").destruction_time_ns),
                format_time_ns(point.result("CODIC").destruction_time_ns),
            ]
        )
    print(
        render_table(
            ["Module", "TCG", "LISA-clone", "RowClone", "CODIC"],
            rows,
            title="Time to destroy all DRAM data at power-on (Figure 7)",
        )
    )
    energy = sweep.energy_comparison()
    print()
    print(
        "Energy to destroy an 8 GB module: CODIC uses "
        f"{energy.energy_ratio_over('CODIC', 'TCG'):.0f}x less than TCG, "
        f"{energy.energy_ratio_over('CODIC', 'LISA-clone'):.1f}x less than LISA-clone and "
        f"{energy.energy_ratio_over('CODIC', 'RowClone'):.1f}x less than RowClone."
    )


def main() -> None:
    demo_attack()
    figure7_sweep()


if __name__ == "__main__":
    main()
