#!/usr/bin/env python3
"""Quickstart: program the CODIC substrate and watch what it does to a cell.

This example walks through the core abstraction of the paper:

1. build a :class:`~repro.core.substrate.CODICSubstrate`,
2. program its mode registers with each standard variant (the same MRS
   commands a memory controller would issue),
3. simulate the variant on the behavioral cell/bitline/sense-amplifier model,
4. print the Table 1 signal timings and the Table 2 latency/energy numbers.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import CODICSubstrate, standard_variants
from repro.power import CommandEnergyModel
from repro.utils.tables import render_table


def main() -> None:
    substrate = CODICSubstrate()
    energy_model = CommandEnergyModel()

    print("CODIC substrate hardware cost (Section 4.2.1):")
    cost = substrate.hardware_cost()
    print(f"  area overhead : {cost.area_overhead_percent:.2f} % of a mat")
    print(f"  energy/command: {cost.energy_per_command_fj:.0f} fJ "
          f"({cost.energy_relative_to_activation * 100:.4f} % of one activation)")
    print()

    rows = []
    for name, variant in standard_variants().items():
        # Program the mode registers exactly as the memory controller would.
        mrs_commands = substrate.configure(variant)

        # Simulate the configured schedule on a cell that initially stores '1'.
        result = substrate.simulate_cell(initial_cell_voltage=1.0, record=False)

        rows.append(
            [
                name,
                variant.function.value,
                variant.schedule.describe(),
                len(mrs_commands),
                f"{variant.latency_ns:.0f}",
                f"{energy_model.variant_energy_nj(variant):.1f}",
                f"{result.final_cell_voltage:.2f}",
            ]
        )

    print(
        render_table(
            ["Variant", "Function", "Signal schedule", "MRS cmds",
             "Latency (ns)", "Energy (nJ)", "Cell voltage after (Vdd)"],
            rows,
            title="Standard CODIC variants (Tables 1 and 2)",
        )
    )
    print()
    print("Reading the last column: CODIC-sig leaves the cell at Vdd/2 (0.50),")
    print("CODIC-det writes a deterministic 0, CODIC-det-one writes a 1, and the")
    print("activate/precharge variants behave like the regular DDRx commands.")


if __name__ == "__main__":
    main()
