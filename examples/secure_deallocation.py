#!/usr/bin/env python3
"""Secure deallocation on the system simulator (paper Appendix A).

The example runs the allocation-intensive `malloc` and `shell` workloads on
the simulated system (in-order core, L1/L2 caches, DDR3-1600 channel) under
four secure-deallocation mechanisms -- software zeroing, LISA-clone, RowClone
and CODIC-det -- and reports speedup and DRAM energy savings relative to the
software baseline (Figure 8), plus one 4-core mix (Figure 9).

Run with:  python examples/secure_deallocation.py
"""

from __future__ import annotations

from repro.dealloc import DeallocStudy, PAPER_MIXES
from repro.dealloc.simulation import COMPARED_MECHANISMS
from repro.utils.tables import render_table

MECHANISM_LABELS = {"lisa": "LISA-clone", "rowclone": "RowClone", "codic": "CODIC"}


def main() -> None:
    study = DeallocStudy(instructions=60_000)

    print("Single-core workloads (speedup % / energy savings % vs software zeroing):")
    rows = []
    for benchmark in ("malloc", "shell"):
        result = study.run_workload(benchmark)
        cells = [benchmark]
        for mechanism in COMPARED_MECHANISMS:
            comparison = result.comparison(mechanism)
            cells.append(
                f"{comparison.speedup_percent:+.1f} / {comparison.energy_savings_percent:+.1f}"
            )
        rows.append(cells)
    print(
        render_table(
            ["Workload"] + [MECHANISM_LABELS[m] for m in COMPARED_MECHANISMS], rows
        )
    )
    print()

    mix_name = "MIX5"
    print(f"4-core mix {mix_name} = {PAPER_MIXES[mix_name]}:")
    mix_result = DeallocStudy(instructions=25_000).run_mix(mix_name, PAPER_MIXES[mix_name])
    mix_rows = [
        [
            MECHANISM_LABELS[mechanism],
            f"{mix_result.comparison(mechanism).speedup_percent:+.1f} %",
            f"{mix_result.comparison(mechanism).energy_savings_percent:+.1f} %",
        ]
        for mechanism in COMPARED_MECHANISMS
    ]
    print(render_table(["Mechanism", "Speedup", "Energy savings"], mix_rows))
    print()
    print("As in the paper, the in-DRAM mechanisms beat software zeroing and")
    print("CODIC-det is the best of the three (it needs a single row-granular")
    print("command per row and no source row or data movement).")


if __name__ == "__main__":
    main()
