#!/usr/bin/env python3
"""Exploring the CODIC design space (Section 4.1.3).

CODIC can assert/de-assert each of the four internal signals at any of the
300 valid (start, end) pulses, giving 300^4 possible command variants.  This
example samples a slice of that space, classifies each schedule by the
functional behaviour it produces, verifies a few of them against the circuit
simulator, and registers a custom latency-optimized signature variant in the
library.

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from collections import Counter

from repro.engine import monte_carlo_grid
from repro.core.substrate import CODICSubstrate
from repro.core.variants import (
    VariantFunction,
    classify_schedule,
    count_pulses_per_signal,
    count_total_variants,
    iter_variant_schedules,
)
from repro.utils.tables import render_table


def main() -> None:
    print(f"Valid pulses per signal : {count_pulses_per_signal()}")
    print(f"Total CODIC variants    : {count_total_variants():,} (= 300^4)")
    print()

    # Sample a slice of the two-signal (wl, EQ) subspace and classify it.
    census: Counter = Counter()
    for schedule in iter_variant_schedules(signals=("wl", "EQ"), limit=20_000):
        census[classify_schedule(schedule)] += 1
    rows = [[function.value, count] for function, count in census.most_common()]
    print(render_table(["Functional class", "schedules"], rows,
                       title="Classification of 20,000 (wl, EQ) schedules"))
    print()

    # Define, register and validate a custom variant: a latency-optimized
    # signature command that terminates its signals even earlier than
    # CODIC-sig-opt (Section 4.1.1 shows the cell reaches Vdd/2 almost
    # immediately after EQ rises).
    substrate = CODICSubstrate()
    custom = substrate.library.define(
        "CODIC-sig-fast",
        "Aggressively shortened signature generation",
        {"wl": (4, 9), "EQ": (5, 9)},
    )
    print(f"Registered {custom.name}: {custom.schedule.describe()}")
    print(f"  classified as : {custom.function.value}")
    print(f"  latency       : {custom.latency_ns:.0f} ns "
          f"(vs 35 ns for CODIC-sig, 13 ns for CODIC-sig-opt)")

    result = substrate.simulate_variant_on_cell(custom, initial_cell_voltage=1.0)
    print(f"  circuit check : final cell voltage {result.final_cell_voltage:.2f} Vdd "
          f"({'at precharge - OK' if result.cell_at_precharge else 'NOT at precharge'})")
    print()

    # Show that the deterministic-value direction is purely a matter of which
    # SA half fires first, across several start-time choices.
    rows = []
    for sense_n_start, sense_p_start in ((6, 12), (8, 16), (10, 13), (12, 8), (16, 6)):
        schedule = substrate.library.define(
            f"det-{sense_n_start}-{sense_p_start}",
            "deterministic-value exploration",
            {
                "wl": (5, 22),
                "sense_n": (sense_n_start, 22),
                "sense_p": (sense_p_start, 22),
            },
            replace=True,
        )
        sim = substrate.simulate_variant_on_cell(schedule, initial_cell_voltage=1.0)
        rows.append(
            [sense_n_start, sense_p_start, schedule.function.value, sim.final_cell_value]
        )
    print(render_table(
        ["sense_n start (ns)", "sense_p start (ns)", "classification", "cell value"],
        rows,
        title="Deterministic value generation vs SA enable order",
    ))
    print()

    # Robustness corner of the design space: sweep CODIC-sigsa flip rates over
    # the full (process variation x temperature) grid.  Each grid point is an
    # independent engine job with its own SeedSequence-derived stream, and
    # shard_size additionally splits each point's sample range across the same
    # worker pool (canonical per-block streams), so the sweep fans out both
    # across and *within* points yet reproduces the serial result exactly.
    variations = [2.0, 3.0, 4.0, 5.0]
    temperatures = [30.0, 60.0, 85.0]
    points = monte_carlo_grid(
        variations, temperatures, samples=20_000, workers=4, shard_size=5_000
    )
    rows = [
        [f"{point.variation_percent:.0f}%", f"{point.temperature_c:.0f}C",
         round(point.flip_percent, 3)]
        for point in points
    ]
    print(render_table(
        ["Process variation", "Temperature", "Bit flips (%)"],
        rows,
        title=f"CODIC-sigsa flip-rate grid ({len(points)} points, 4 workers)",
    ))


if __name__ == "__main__":
    main()
