#!/usr/bin/env python3
"""Device authentication with the CODIC-sig PUF (Section 5.1 workload).

The scenario mirrors the paper's motivating IoT use case: a fleet of devices
(simulated DRAM modules from the Table 12 population) is enrolled by a
verifier, which stores a handful of challenge-response pairs per device.
Later, devices authenticate themselves -- possibly while running hot -- and a
counterfeit device (a different module) tries to impersonate one of them.

Run with:  python examples/puf_authentication.py
"""

from __future__ import annotations

import numpy as np

from repro.dram import paper_population
from repro.puf import AuthenticationProtocol, Challenge, CODICSigPUF, PUFTimingModel
from repro.utils.tables import render_table


def main() -> None:
    population = paper_population()
    fleet = population.modules[:4]          # four deployed devices
    counterfeit = population.modules[10]    # attacker-controlled module
    rng = np.random.default_rng(7)

    print(f"Enrolling {len(fleet)} devices, 4 challenges each...")
    protocols: dict[str, AuthenticationProtocol] = {}
    challenges: dict[str, list[Challenge]] = {}
    for module in fleet:
        puf = CODICSigPUF(module)
        protocol = AuthenticationProtocol(puf, acceptance_threshold=0.85)
        device_challenges = [Challenge.random(module, rng) for _ in range(4)]
        for challenge in device_challenges:
            protocol.enroll(challenge, temperature_c=30.0)
        protocols[module.module_id] = protocol
        challenges[module.module_id] = device_challenges

    rows = []
    for module in fleet:
        protocol = protocols[module.module_id]
        puf = CODICSigPUF(module)
        accepted_cold = accepted_hot = 0
        for challenge in challenges[module.module_id]:
            if protocol.authenticate(challenge, puf.evaluate(challenge, 30.0, rng=rng)):
                accepted_cold += 1
            if protocol.authenticate(challenge, puf.evaluate(challenge, 85.0, rng=rng)):
                accepted_hot += 1

        # The counterfeit device answers the same challenges with its own PUF.
        impostor = CODICSigPUF(counterfeit)
        impostor_accepted = sum(
            protocol.authenticate(challenge, impostor.evaluate(challenge, 30.0, rng=rng))
            for challenge in challenges[module.module_id]
        )
        rows.append(
            [module.module_id, f"{accepted_cold}/4", f"{accepted_hot}/4",
             f"{impostor_accepted}/4"]
        )

    print(
        render_table(
            ["Device", "Genuine @30C accepted", "Genuine @85C accepted",
             "Counterfeit accepted"],
            rows,
            title="CODIC-sig PUF authentication",
        )
    )

    timing = PUFTimingModel()
    estimate = timing.codic_sig(filter_passes=5)
    print()
    print(
        f"Each authentication evaluates an 8 KB segment {estimate.passes} times "
        f"and takes ~{estimate.total_ms:.2f} ms on SoftMC-class hardware "
        f"(Table 4; {timing.dram_latency_puf(100).total_ms / estimate.total_ms:.0f}x "
        f"faster than the DRAM Latency PUF)."
    )


if __name__ == "__main__":
    main()
